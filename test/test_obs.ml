(* bess_obs: the metrics registry (snapshot/diff, key flattening, JSON)
   and the bounded trace ring, plus the Stats extensions they rely on and
   the event-hook ordering regression. *)

module Registry = Bess_obs.Registry
module Trace = Bess_obs.Trace
module Stats = Bess_util.Stats

let test_registry_snapshot_diff () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  Stats.incr st "log.appends";
  Stats.add st "forces" 3;
  let before = Registry.snapshot ~registry:reg () in
  Alcotest.(check (list (pair string int)))
    "flattened keys: namespaced kept, bare prefixed"
    [ ("wal.forces", 3); ("wal.log.appends", 1) ]
    (Registry.counters before);
  Stats.incr st "log.appends";
  Stats.incr st "log.appends";
  let after = Registry.snapshot ~registry:reg () in
  let d = Registry.diff ~before ~after () in
  Alcotest.(check (list (pair string int)))
    "diff keeps moved counters only" [ ("wal.log.appends", 2) ]
    (Registry.counters d)

let test_registry_replace_and_histograms () =
  let reg = Registry.create () in
  let st1 = Stats.create () in
  Stats.incr st1 "c";
  Registry.register_stats ~registry:reg "lock" st1;
  (* A re-created substrate re-registers: latest instance wins. *)
  let st2 = Stats.create () in
  Stats.observe st2 "lock.wait_ticks" 4;
  Stats.observe st2 "lock.wait_ticks" 8;
  Registry.register_stats ~registry:reg "lock" st2;
  let snap = Registry.snapshot ~registry:reg () in
  Alcotest.(check (list (pair string int))) "old instance gone" [] (Registry.counters snap);
  (match Registry.histograms snap with
  | [ (name, h) ] ->
      Alcotest.(check string) "histogram key" "lock.wait_ticks" name;
      Alcotest.(check int) "count" 2 h.Registry.h_count;
      Alcotest.(check int) "sum" 12 h.Registry.h_sum
  | l -> Alcotest.fail (Printf.sprintf "expected one histogram, got %d" (List.length l)));
  let json = Registry.json_of_snapshot snap in
  Alcotest.(check bool) "json has histogram" true
    (let needle = "\"lock.wait_ticks\"" in
     let rec search i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle || search (i + 1))
     in
     search 0)

let test_labeled_counters () =
  let st = Stats.create () in
  Stats.incr_labeled st "net.calls" ~label:"1->2";
  Stats.incr_labeled st "net.calls" ~label:"1->2";
  Stats.incr_labeled st "net.calls" ~label:"2->1";
  Alcotest.(check int) "per-label" 2 (Stats.get_labeled st "net.calls" ~label:"1->2");
  Alcotest.(check int) "other label" 1 (Stats.get_labeled st "net.calls" ~label:"2->1");
  Alcotest.(check int) "unseen label" 0 (Stats.get_labeled st "net.calls" ~label:"9->9")

let test_stats_observe () =
  let st = Stats.create () in
  ignore (Stats.histogram st "bytes") (* eager: visible before samples *);
  Alcotest.(check int) "eager histogram listed" 1 (List.length (Stats.histograms st));
  List.iter (Stats.observe st "bytes") [ 1; 2; 4; 100 ];
  let h = Option.get (Stats.find_histogram st "bytes") in
  Alcotest.(check int) "count" 4 (Bess_util.Histogram.count h);
  Alcotest.(check int) "sum" 107 (Bess_util.Histogram.sum h);
  Stats.reset st;
  Alcotest.(check int) "reset empties histograms" 0
    (Bess_util.Histogram.count (Option.get (Stats.find_histogram st "bytes")))

let test_trace_bounded_eviction () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~kind:"k" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length tr);
  Alcotest.(check int) "clock counts everything" 10 (Trace.clock tr);
  Alcotest.(check (list string)) "oldest evicted, order kept" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.detail) (Trace.to_list tr))

let test_trace_filter () =
  let tr = Trace.create ~capacity:16 () in
  Trace.set_filter tr (Some [ "txn_commit" ]);
  Trace.record tr ~kind:"data_fault" ~detail:"seg=1";
  Trace.record tr ~kind:"txn_commit" ~detail:"txn=1";
  Trace.record tr ~kind:"data_fault" ~detail:"seg=2";
  Alcotest.(check int) "only allowed kinds stored" 1 (Trace.length tr);
  Alcotest.(check int) "clock advances even when filtered" 3 (Trace.clock tr);
  (match Trace.to_list tr with
  | [ e ] -> Alcotest.(check int) "clock stamp is record time" 2 e.Trace.clock
  | _ -> Alcotest.fail "one entry expected");
  Trace.set_filter tr None;
  Trace.record tr ~kind:"data_fault" ~detail:"seg=3";
  Alcotest.(check int) "filter cleared" 2 (Trace.length tr)

let test_trace_wrap_exact_capacity () =
  (* Exactly [capacity] records: full ring, nothing evicted yet; one
     more record evicts exactly the oldest. *)
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 4 do
    Trace.record tr ~kind:"k" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "full at exact capacity" 4 (Trace.length tr);
  Alcotest.(check (list string)) "all four retained" [ "1"; "2"; "3"; "4" ]
    (List.map (fun e -> e.Trace.detail) (Trace.to_list tr));
  Trace.record tr ~kind:"k" ~detail:"5";
  Alcotest.(check (list string)) "wrap evicts only the oldest" [ "2"; "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.detail) (Trace.to_list tr));
  Alcotest.(check int) "length still capped" 4 (Trace.length tr)

let test_trace_filter_roundtrip () =
  (* set_filter round-trip: Some -> None restores record-everything, and
     entries dropped while filtered still advanced the logical clock
     (the mli contract), so post-filter stamps stay strictly ordered. *)
  let tr = Trace.create ~capacity:16 () in
  Trace.record tr ~kind:"a" ~detail:"";
  Trace.set_filter tr (Some [ "b" ]);
  Trace.record tr ~kind:"a" ~detail:"";
  Trace.record tr ~kind:"b" ~detail:"";
  Trace.set_filter tr None;
  Trace.record tr ~kind:"a" ~detail:"";
  Alcotest.(check int) "filtered entry dropped" 3 (Trace.length tr);
  Alcotest.(check int) "clock counted the dropped record" 4 (Trace.clock tr);
  Alcotest.(check (list int)) "stamps reflect true record times" [ 1; 3; 4 ]
    (List.map (fun e -> e.Trace.clock) (Trace.to_list tr))

let test_registry_with_fresh () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Stats.incr st "c";
  Registry.register_stats ~registry:reg "outer" st;
  (try
     Registry.with_fresh ~registry:reg (fun () ->
         Alcotest.(check (list (pair string int)))
           "registry empty inside" []
           (Registry.counters (Registry.snapshot ~registry:reg ()));
         let st' = Stats.create () in
         Stats.add st' "x" 9;
         Registry.register_stats ~registry:reg "inner" st';
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (list (pair string int)))
    "outer bindings restored, inner gone (even on exception)"
    [ ("outer.c", 1) ]
    (Registry.counters (Registry.snapshot ~registry:reg ()))

let test_trace_with_fresh () =
  let tr = Trace.create ~capacity:8 () in
  Trace.record tr ~kind:"outer" ~detail:"1";
  Trace.set_filter tr (Some [ "outer" ]);
  Trace.with_fresh ~trace:tr (fun () ->
      Alcotest.(check int) "ring empty inside" 0 (Trace.length tr);
      Alcotest.(check int) "clock zeroed inside" 0 (Trace.clock tr);
      Trace.record tr ~kind:"inner" ~detail:"x";
      Alcotest.(check int) "filter cleared inside" 1 (Trace.length tr));
  Alcotest.(check (list string)) "outer entries restored" [ "1" ]
    (List.map (fun e -> e.Trace.detail) (Trace.to_list tr));
  Alcotest.(check int) "outer clock restored" 1 (Trace.clock tr);
  Trace.record tr ~kind:"inner" ~detail:"2";
  Alcotest.(check int) "outer filter restored" 1 (Trace.length tr)

let test_event_feeds_trace () =
  let h = Bess.Event.hooks_create () in
  let tr = Trace.create ~capacity:8 () in
  Bess.Event.set_trace h (Some tr);
  Bess.Event.fire h (Bess.Event.Txn_commit { txn = 7 });
  Bess.Event.fire h (Bess.Event.Data_fault { seg = 3 });
  (match Trace.find tr ~kind:"txn_commit" with
  | [ e ] -> Alcotest.(check string) "payload rendered" "txn=7" e.Trace.detail
  | _ -> Alcotest.fail "commit not traced");
  Alcotest.(check int) "both events recorded" 2 (Trace.length tr)

(* Regression: hooks must run in registration order even when many are
   attached to one event (the old list-append registration was quadratic
   and a natural "fix" -- prepending -- would reverse execution order). *)
let test_hook_order_preserved () =
  let h = Bess.Event.hooks_create () in
  Bess.Event.set_trace h None;
  let n = 500 in
  let ran = ref [] in
  for i = 1 to n do
    Bess.Event.register h ~event:"txn_begin" (fun _ -> ran := i :: !ran)
  done;
  Bess.Event.fire h (Bess.Event.Txn_begin { txn = 1 });
  Alcotest.(check (list int)) "registration order" (List.init n (fun i -> i + 1))
    (List.rev !ran)

(* ---- gauges, diff flags, Prometheus exposition ---- *)

let contains hay needle =
  let nl = String.length needle in
  let rec search i =
    i + nl <= String.length hay && (String.sub hay i nl = needle || search (i + 1))
  in
  search 0

let test_registry_gauges () =
  let reg = Registry.create () in
  let v = ref 3 in
  Registry.register_gauge ~registry:reg "cache" "resident_pages" (fun () -> !v);
  Registry.register_gauge ~registry:reg "wal" "wal.unflushed_bytes" (fun () -> 7);
  let snap = Registry.snapshot ~registry:reg () in
  Alcotest.(check (list (pair string int)))
    "gauges sampled and flattened (bare prefixed, namespaced kept)"
    [ ("cache.resident_pages", 3); ("wal.unflushed_bytes", 7) ]
    (Registry.gauges snap);
  v := 10;
  Alcotest.(check (list (pair string int)))
    "a snapshot is a point in time"
    [ ("cache.resident_pages", 3); ("wal.unflushed_bytes", 7) ]
    (Registry.gauges snap);
  (* Latest registration wins, like stats; a raising callback is dropped
     from the snapshot, not fabricated as 0. *)
  Registry.register_gauge ~registry:reg "cache" "resident_pages" (fun () -> 99);
  Registry.register_gauge ~registry:reg "wal" "wal.unflushed_bytes" (fun () ->
      failwith "substrate gone");
  Alcotest.(check (list (pair string int)))
    "replacement visible, raising gauge dropped"
    [ ("cache.resident_pages", 99) ]
    (Registry.gauges (Registry.snapshot ~registry:reg ()));
  let json = Registry.json_of_snapshot (Registry.snapshot ~registry:reg ()) in
  Alcotest.(check bool) "json carries gauges" true
    (contains json "\"gauges\":{\"cache.resident_pages\":99}")

let test_diff_keep_zeros_and_gauges () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let g = ref 5 in
  Registry.register_gauge ~registry:reg "wal" "pending" (fun () -> !g);
  Stats.add st "a" 4;
  Stats.add st "b" 2;
  let before = Registry.snapshot ~registry:reg () in
  Stats.incr st "a";
  g := 9;
  let after = Registry.snapshot ~registry:reg () in
  let d = Registry.diff ~before ~after () in
  Alcotest.(check (list (pair string int)))
    "zero deltas dropped by default" [ ("wal.a", 1) ] (Registry.counters d);
  let dz = Registry.diff ~keep_zeros:true ~before ~after () in
  Alcotest.(check (list (pair string int)))
    "keep_zeros keeps untouched counters"
    [ ("wal.a", 1); ("wal.b", 0) ]
    (Registry.counters dz);
  Alcotest.(check (list (pair string int)))
    "gauges are state, not flow: after's values carried through"
    [ ("wal.pending", 9) ]
    (Registry.gauges d)

let test_diff_negative_and_recreated () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Stats.add st "c" 10;
  Stats.observe st "wal.bytes" 100;
  Stats.observe st "wal.bytes" 50;
  Registry.register_stats ~registry:reg "wal" st;
  let before = Registry.snapshot ~registry:reg () in
  (* The substrate is torn down and re-created mid-window: its counters
     restart from zero, so the delta goes negative and the histogram is
     reported whole rather than as a nonsense negative-count diff. *)
  let st2 = Stats.create () in
  Stats.add st2 "c" 4;
  Stats.observe st2 "wal.bytes" 30;
  Registry.register_stats ~registry:reg "wal" st2;
  let after = Registry.snapshot ~registry:reg () in
  let d = Registry.diff ~before ~after () in
  Alcotest.(check (list (pair string int)))
    "shrunken counter yields a negative delta" [ ("wal.c", -6) ] (Registry.counters d);
  match Registry.histograms d with
  | [ (name, h) ] ->
      Alcotest.(check string) "histogram key" "wal.bytes" name;
      Alcotest.(check int) "re-created instance reported whole" 1 h.Registry.h_count;
      Alcotest.(check int) "sum from the new instance" 30 h.Registry.h_sum
  | l -> Alcotest.fail (Printf.sprintf "expected one histogram, got %d" (List.length l))

let test_histogram_stats_namespace_collision () =
  (* A standalone histogram registered under a key that also binds a
     stats namespace must not clobber it: both flatten into the shared
     dotted namespace and coexist. *)
  let reg = Registry.create () in
  let st = Stats.create () in
  Stats.incr st "log.forces";
  Registry.register_stats ~registry:reg "wal" st;
  let h = Bess_util.Histogram.create () in
  Bess_util.Histogram.observe h 5;
  Registry.register_histogram ~registry:reg "wal" "force_wait" h;
  let snap = Registry.snapshot ~registry:reg () in
  Alcotest.(check (list (pair string int)))
    "stats namespace survives the histogram registration"
    [ ("wal.log.forces", 1) ]
    (Registry.counters snap);
  (match Registry.histograms snap with
  | [ (name, hs) ] ->
      Alcotest.(check string) "histogram flattened uniformly" "wal.force_wait" name;
      Alcotest.(check int) "count" 1 hs.Registry.h_count
  | l -> Alcotest.fail (Printf.sprintf "expected one histogram, got %d" (List.length l)));
  (* And the whole namespace unregisters as one unit. *)
  Registry.register_gauge ~registry:reg "wal" "pending" (fun () -> 1);
  Registry.unregister ~registry:reg "wal";
  let snap = Registry.snapshot ~registry:reg () in
  Alcotest.(check int) "counters gone" 0 (List.length (Registry.counters snap));
  Alcotest.(check int) "histograms gone" 0 (List.length (Registry.histograms snap));
  Alcotest.(check int) "gauges gone" 0 (List.length (Registry.gauges snap))

let test_with_fresh_restores_all_tables () =
  let reg = Registry.create () in
  Registry.register_gauge ~registry:reg "cache" "g" (fun () -> 1);
  let h = Bess_util.Histogram.create () in
  Bess_util.Histogram.observe h 2;
  Registry.register_histogram ~registry:reg "wal" "h" h;
  (try
     Registry.with_fresh ~registry:reg (fun () ->
         Alcotest.(check (list string)) "all tables empty inside" [] (Registry.keys ~registry:reg ());
         Registry.register_gauge ~registry:reg "net" "n" (fun () -> 2);
         failwith "boom")
   with Failure _ -> ());
  let snap = Registry.snapshot ~registry:reg () in
  Alcotest.(check (list (pair string int)))
    "gauges restored on exception, inner gone" [ ("cache.g", 1) ] (Registry.gauges snap);
  Alcotest.(check int) "histograms restored" 1 (List.length (Registry.histograms snap))

let test_prom_exposition () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Stats.incr st "log.forces";
  Stats.incr_labeled st "net.calls" ~label:"1->2";
  Stats.observe st "wal.waits" 8;
  Registry.register_stats ~registry:reg "wal" st;
  Registry.register_gauge ~registry:reg "cache" "resident_pages" (fun () -> 4);
  let s = Registry.prom_of_snapshot (Registry.snapshot ~registry:reg ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" needle) true (contains s needle))
    [
      "# TYPE bess_wal_log_forces counter";
      "bess_wal_log_forces 1";
      "bess_wal_net_calls{label=\"1->2\"} 1";
      "# TYPE bess_cache_resident_pages gauge";
      "bess_cache_resident_pages 4";
      "# TYPE bess_wal_waits summary";
      "bess_wal_waits{quantile=\"0.99\"}";
      "bess_wal_waits_sum 8";
      "bess_wal_waits_count 1";
    ]

(* Hygiene: every dotted metric-name literal in lib/ (Stats calls and
   gauge registrations) must be snake_case with its first component in
   Registry.metric_namespaces — the counter analogue of the span-kinds
   check. Skips when git is unavailable. *)
let test_metric_names_hygienic () =
  let slurp cmd =
    let ic = Unix.open_process_in cmd in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with Unix.WEXITED 0 -> Some !lines | _ -> None
  in
  let quoted line =
    match String.index_opt line '"' with
    | Some i ->
        let j = String.rindex line '"' in
        if j > i then Some (String.sub line (i + 1) (j - i - 1)) else None
    | None -> None
  in
  let stats_lits =
    slurp
      "git grep -hoE 'Stats\\.(incr|add|set|observe|incr_labeled|add_labeled|histogram)[^\"]*\"[a-z0-9_.]+\"' -- ':(top)lib' 2>/dev/null | sort -u"
  in
  let gauge_lits =
    slurp
      "git grep -hoE 'register_gauge[^\"]*\"[a-z0-9_]+\" +\"[a-z0-9_.]+\"' -- ':(top)lib' 2>/dev/null | sed 's/.*\" //' | sort -u"
  in
  match (stats_lits, gauge_lits) with
  | Some stats_lines, Some gauge_lines ->
      let names =
        List.filter_map quoted stats_lines @ List.filter_map quoted gauge_lines
      in
      Alcotest.(check bool) "grep found the instrumentation" true (List.length names > 40);
      let is_component c =
        c <> ""
        && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false) c
      in
      List.iter
        (fun name ->
          (* Literals like "span." / "event." are prefixes completed at
             runtime: validate the leading component only. *)
          let parts = String.split_on_char '.' name in
          let parts =
            match List.rev parts with "" :: rest -> List.rev rest | _ -> parts
          in
          (match parts with
          | first :: _ ->
              Alcotest.(check bool)
                (Printf.sprintf "%S starts with a registered namespace" name)
                true
                (List.mem first Registry.metric_namespaces)
          | [] -> Alcotest.failf "empty metric literal %S" name);
          List.iter
            (fun c ->
              Alcotest.(check bool)
                (Printf.sprintf "%S component %S is snake_case" name c)
                true (is_component c))
            parts)
        names
  | _ -> () (* git unavailable: nothing to check *)

(* Hygiene: build artifacts must not be tracked. Skips when git (or the
   .git directory) is unavailable in the test environment. *)
let test_no_build_artifacts_tracked () =
  (* [:(top)] anchors the pathspec at the repo root: the test binary runs
     from inside the dune sandbox. *)
  let ic = Unix.open_process_in "git ls-files ':(top)_build' 2>/dev/null | head -1" in
  let line = try Some (input_line ic) with End_of_file -> None in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 ->
      (match line with
      | Some f -> Alcotest.failf "_build artifacts are tracked by git (e.g. %s)" f
      | None -> ())
  | _ -> () (* git unavailable: nothing to check *)

let suite =
  [
    Alcotest.test_case "registry_snapshot_diff" `Quick test_registry_snapshot_diff;
    Alcotest.test_case "registry_replace_histograms" `Quick test_registry_replace_and_histograms;
    Alcotest.test_case "labeled_counters" `Quick test_labeled_counters;
    Alcotest.test_case "stats_observe" `Quick test_stats_observe;
    Alcotest.test_case "trace_bounded_eviction" `Quick test_trace_bounded_eviction;
    Alcotest.test_case "trace_filter" `Quick test_trace_filter;
    Alcotest.test_case "trace_wrap_exact_capacity" `Quick test_trace_wrap_exact_capacity;
    Alcotest.test_case "trace_filter_roundtrip" `Quick test_trace_filter_roundtrip;
    Alcotest.test_case "registry_with_fresh" `Quick test_registry_with_fresh;
    Alcotest.test_case "trace_with_fresh" `Quick test_trace_with_fresh;
    Alcotest.test_case "event_feeds_trace" `Quick test_event_feeds_trace;
    Alcotest.test_case "hook_order_preserved" `Quick test_hook_order_preserved;
    Alcotest.test_case "no_build_artifacts_tracked" `Quick test_no_build_artifacts_tracked;
    Alcotest.test_case "registry_gauges" `Quick test_registry_gauges;
    Alcotest.test_case "diff_keep_zeros_and_gauges" `Quick test_diff_keep_zeros_and_gauges;
    Alcotest.test_case "diff_negative_and_recreated" `Quick test_diff_negative_and_recreated;
    Alcotest.test_case "histogram_stats_collision" `Quick test_histogram_stats_namespace_collision;
    Alcotest.test_case "with_fresh_restores_all_tables" `Quick test_with_fresh_restores_all_tables;
    Alcotest.test_case "prom_exposition" `Quick test_prom_exposition;
    Alcotest.test_case "metric_names_hygienic" `Quick test_metric_names_hygienic;
  ]
