(* Cross-shard chaos torture: deterministic fault schedules swept over
   many seeds against a shard ring committing through presumed-abort
   2PC, with coordinator crashes between prepare and commit, lost
   prepare/decide messages, duplicate deliveries, and participants
   crashing while prepared. The atomicity contract under all of it:
   - a global transaction lands on ALL of its shards or NONE of them;
   - no phantoms: a slot only ever holds 0 or the one value the one
     transaction assigned to it really wrote;
   - a transaction with no durable commit decision record resolves to
     abort on every shard (presumed abort), one WITH a decision record
     lands everywhere once re-driven;
   - no locks stay held and nothing stays in doubt once every decision
     is re-driven and every prepared transaction has queried the
     coordinator;
   - the final images survive crash + recovery of every shard AND the
     coordinator, byte for byte;
   - any seed replays its exact fault schedule, outcomes and images. *)

module Fault = Bess_fault.Fault
module Prng = Bess_util.Prng
module Shard = Bess_shard.Shard
module Twopc = Bess_shard.Twopc

let i64 v =
  let b = Bytes.create 8 in
  Bess_util.Codec.set_i64 b 0 v;
  b

let nclients = 3
let nrounds = 6
let nshards = 3

type outcome =
  | Commit
  | Abort
  | Skipped (* blocked: rolled back everywhere, never prepared through *)
  | Maybe of (int * int) list (* coordinator crashed mid-commit; its participants *)

type attempt = { a_value : int; a_shards : int list; a_outcome : outcome }

(* One run: [nclients] clients take [nrounds] turns each; turn k writes
   the unique nonzero value for k into slot k (its own 8-byte offset of
   every involved shard's hottest page) — single-shard usually, cross-
   shard every third turn. The chaos hook crashes AND recovers a drawn
   participant between the vote and the decision, so decides land on a
   freshly recovered server that replayed the prepare into in-doubt and
   reacquired its X locks. A coordinator crash makes the attempt
   [Maybe]: recover re-drives what was decided and the participants
   query out the rest. Returns the reproducibility witness. *)
let run_torture ~seed ~profile =
  Bess_obs.Registry.with_fresh @@ fun () ->
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let sh = Shard.create ~n:nshards ~pages_per_shard:2 () in
  let prng = Prng.create (seed * 7919) in
  Fault.seed seed;
  Fault.apply_profile (List.assoc profile Fault.profiles);
  let chaos () =
    if Fault.fire "2pc.part.crash_prepared" then begin
      let s = Fault.draw "2pc.part.crash_prepared" ~bound:nshards in
      Shard.crash_shard sh s;
      ignore (Shard.recover_shard sh s)
    end
  in
  let attempts = ref [] in
  for k = 0 to (nclients * nrounds) - 1 do
    let v = (seed * 1000) + k + 1 in
    let primary = Prng.int prng nshards in
    let shards =
      if k mod 3 = 0 then [ primary; (primary + 1) mod nshards ] else [ primary ]
    in
    let writes = List.map (fun s -> (s, 0, k * 8, i64 v)) shards in
    let outcome =
      match Shard.txn ~chaos sh ~client:(3000 + (k mod nclients)) ~writes () with
      | `Committed -> Commit
      | `Aborted -> Abort
      | `Blocked -> Skipped
      | exception Twopc.Crashed ->
          (* Mid-commit coordinator loss: participants are prepared and
             holding X locks. Bring the coordinator back (re-driving any
             decision it forced) and let the prepared survivors query
             out their fate, or the rest of the fleet starves. *)
          let parts = Shard.last_parts sh in
          ignore (Twopc.recover (Shard.coord sh));
          ignore (Shard.resolve_in_doubt sh);
          Maybe parts
    in
    attempts := { a_value = v; a_shards = shards; a_outcome = outcome } :: !attempts
  done;
  let attempts = List.rev !attempts in
  let schedules =
    List.map (fun (site, _) -> (site, Fault.schedule site)) (Fault.configured ())
  in
  (* Disarm, then finish the protocol: re-drive every unacked decision
     and resolve every still-prepared transaction by query. After that,
     strictly nothing may be in doubt, pending or locked. *)
  Fault.reset ();
  ignore (Twopc.redrive (Shard.coord sh));
  let _, unresolved = Shard.resolve_in_doubt sh in
  if unresolved <> 0 then
    Alcotest.failf "seed %d (%s): %d transactions still in doubt after resolution" seed
      profile unresolved;
  if Twopc.unresolved (Shard.coord sh) <> 0 then
    Alcotest.failf "seed %d (%s): coordinator still holds unacked decisions" seed profile;
  if Shard.in_doubt sh <> 0 then
    Alcotest.failf "seed %d (%s): prepared transactions leaked" seed profile;
  let leaked = Shard.locks_held sh in
  if leaked <> 0 then Alcotest.failf "seed %d (%s): %d locks leaked" seed profile leaked;
  (* Atomicity + phantom check, slot by slot. Slot k may hold only 0 or
     its own transaction's value, uniformly across the shards the
     transaction touched, and nothing on shards it did not touch. *)
  let slot shard k = Bess_util.Codec.get_i64 (Shard.page_image sh shard 0) (k * 8) in
  List.iteri
    (fun k a ->
      let values = List.map (fun s -> slot s k) a.a_shards in
      List.iter
        (fun v ->
          if v <> 0 && v <> a.a_value then
            Alcotest.failf "seed %d (%s): slot %d holds phantom %d" seed profile k v)
        values;
      let landed = List.for_all (fun v -> v = a.a_value) values in
      let clean = List.for_all (fun v -> v = 0) values in
      if not (landed || clean) then
        Alcotest.failf "seed %d (%s): txn %d is torn across shards" seed profile k;
      (match a.a_outcome with
      | Commit ->
          if not landed then
            Alcotest.failf "seed %d (%s): committed txn %d missing" seed profile k
      | Abort | Skipped ->
          if not clean then
            Alcotest.failf "seed %d (%s): aborted txn %d left writes" seed profile k
      | Maybe parts ->
          (* The presumed-abort contract: visible iff a durable commit
             decision names it at the coordinator. *)
          let decided =
            List.for_all
              (fun (ep, tx) -> Twopc.has_decision (Shard.coord sh) ~shard:ep ~txn:tx)
              parts
            && parts <> []
          in
          if decided && not landed then
            Alcotest.failf "seed %d (%s): decided txn %d not re-driven" seed profile k;
          if (not decided) && not clean then
            Alcotest.failf "seed %d (%s): undecided txn %d violated presumed abort" seed
              profile k);
      (* No stray writes on shards the transaction never touched. *)
      for s = 0 to nshards - 1 do
        if (not (List.mem s a.a_shards)) && slot s k <> 0 then
          Alcotest.failf "seed %d (%s): txn %d leaked onto shard %d" seed profile k s
      done)
    attempts;
  (* Durability: everything above must survive losing every process. *)
  let crc = Shard.images_crc sh in
  for s = 0 to nshards - 1 do
    Shard.crash_shard sh s
  done;
  Twopc.crash (Shard.coord sh);
  for s = 0 to nshards - 1 do
    ignore (Shard.recover_shard sh s)
  done;
  ignore (Twopc.recover (Shard.coord sh));
  ignore (Shard.resolve_in_doubt sh);
  if Shard.images_crc sh <> crc then
    Alcotest.failf "seed %d (%s): images changed across full-ring crash + recovery" seed
      profile;
  if Shard.locks_held sh <> 0 || Shard.in_doubt sh <> 0 then
    Alcotest.failf "seed %d (%s): ring not quiesced after full recovery" seed profile;
  let outcomes =
    List.map
      (fun a ->
        match a.a_outcome with
        | Commit -> "C"
        | Abort -> "A"
        | Skipped -> "S"
        | Maybe _ -> "M")
      attempts
  in
  (schedules, crc, String.concat "" outcomes)

(* 200 distinct seeds alternating the full 2PC chaos profile (message
   faults + coordinator and participant crashes) with a network-only
   profile. The fire count guards against the sweep silently testing
   nothing. *)
let test_torture_sweep () =
  let total_fires = ref 0 in
  let coord_crashes = ref 0 and part_crashes = ref 0 in
  for seed = 1 to 200 do
    let profile = if seed mod 2 = 0 then "chaos-2pc" else "flaky-net" in
    let schedules, _, _ = run_torture ~seed ~profile in
    List.iter
      (fun (site, ords) ->
        total_fires := !total_fires + List.length ords;
        if site = "2pc.coord.crash_undecided" || site = "2pc.coord.crash_decided" then
          coord_crashes := !coord_crashes + List.length ords;
        if site = "2pc.part.crash_prepared" then
          part_crashes := !part_crashes + List.length ords)
      schedules
  done;
  Alcotest.(check bool) "faults actually fired across the sweep" true (!total_fires > 100);
  Alcotest.(check bool) "coordinator crashes exercised" true (!coord_crashes > 5);
  Alcotest.(check bool) "prepared-participant crashes exercised" true (!part_crashes > 5)

let test_replay_byte_for_byte () =
  List.iter
    (fun seed ->
      let a = run_torture ~seed ~profile:"chaos-2pc" in
      let b = run_torture ~seed ~profile:"chaos-2pc" in
      if a <> b then
        Alcotest.failf "seed %d: schedule/images/outcomes not reproducible" seed;
      let schedules, _, _ = a in
      Alcotest.(check bool) "schedules recorded for every site" true
        (List.length schedules > 0))
    [ 1; 7; 42; 137; 9999 ]

(* The presumed-abort invariant (and everything else run_torture
   asserts) under arbitrary seeds, plus byte-for-byte replay of each. *)
let prop_presumed_abort =
  QCheck.Test.make ~name:"presumed abort + replay hold for arbitrary fault seeds"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let a = run_torture ~seed:(seed + 1) ~profile:"chaos-2pc" in
      let b = run_torture ~seed:(seed + 1) ~profile:"chaos-2pc" in
      a = b)

let suite =
  [
    Alcotest.test_case "torture_sweep_200_seeds" `Quick test_torture_sweep;
    Alcotest.test_case "replay_byte_for_byte" `Quick test_replay_byte_for_byte;
    QCheck_alcotest.to_alcotest prop_presumed_abort;
  ]
