lib/core/session.ml: Array Bess_cache Bess_lock Bess_storage Bess_util Bess_vmem Bytes Catalog Diff Event Fetcher Hashtbl Layout List Oid Option Printf Server Stdlib Type_desc
