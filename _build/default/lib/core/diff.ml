(* Byte-range diffing of page images.

   Client-cached transactions ship physical update records at commit: for
   every dirty page the client diffs the page's before image (captured at
   the first write fault) against its current content, producing compact
   (offset, before, after) ranges. Nearby changed runs are coalesced so a
   scattered record-field update does not explode into dozens of tiny log
   records. *)

type range = { offset : int; before : Bytes.t; after : Bytes.t }

(* Merge runs separated by fewer than [gap] unchanged bytes. *)
let ranges ?(gap = 32) ~before ~after () =
  if Bytes.length before <> Bytes.length after then
    invalid_arg "Diff.ranges: image length mismatch";
  let n = Bytes.length before in
  let out = ref [] in
  let emit lo hi =
    if hi > lo then
      out :=
        { offset = lo; before = Bytes.sub before lo (hi - lo); after = Bytes.sub after lo (hi - lo) }
        :: !out
  in
  let i = ref 0 in
  let run_start = ref (-1) in
  let last_diff = ref (-1) in
  while !i < n do
    if Bytes.get before !i <> Bytes.get after !i then begin
      if !run_start < 0 then run_start := !i
      else if !i - !last_diff > gap then begin
        emit !run_start (!last_diff + 1);
        run_start := !i
      end;
      last_diff := !i
    end;
    incr i
  done;
  if !run_start >= 0 then emit !run_start (!last_diff + 1);
  List.rev !out

let is_identical ~before ~after = Bytes.equal before after

(* Apply a diff to a copy of [base]; used by tests to validate round trips. *)
let apply base rs =
  let out = Bytes.copy base in
  List.iter (fun r -> Bytes.blit r.after 0 out r.offset (Bytes.length r.after)) rs;
  out

let total_bytes rs = List.fold_left (fun acc r -> acc + Bytes.length r.after) 0 rs
