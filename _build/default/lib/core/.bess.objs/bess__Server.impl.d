lib/core/server.ml: Bess_cache Bess_lock Bess_storage Bess_util Bess_wal Bytes Event Fmt Hashtbl List Option Printf Store
