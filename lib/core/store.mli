(** The server-side page store: storage areas fronted by a page cache,
    with write-ahead logging and ARIES recovery wired through.

    Enforced invariants: the WAL rule (a dirty page writes back only
    after the log is forced past its LSN) and steal/no-force (dirty pages
    may be evicted before commit; commit forces only the log). Page LSNs
    are volatile — update records carry physical images, so redo is
    idempotent from LSN 0 (DESIGN.md §7). *)

module Page_id = Bess_cache.Page_id

type t

(** [log] supplies a pre-opened (possibly recovered-from) log; [log_path]
    otherwise names a fresh backing file. [group_commit] sets the force
    scheduling policy for every commit site (default {!Bess_wal.Group_commit.Immediate}). *)
val create :
  ?log_path:string ->
  ?log:Bess_wal.Log.t ->
  ?group_commit:Bess_wal.Group_commit.policy ->
  ?cache_slots:int ->
  Bess_storage.Area_set.t ->
  t
val cache : t -> Bess_cache.Cache.t
val log : t -> Bess_wal.Log.t

(** The force scheduler all commit sites register with. *)
val group_commit : t -> Bess_wal.Group_commit.t

val set_group_policy : t -> Bess_wal.Group_commit.policy -> unit

(** Block until [ticket]'s LSN is durable (the commit acknowledgement). *)
val await_commit : t -> Bess_wal.Group_commit.ticket -> unit
val areas : t -> Bess_storage.Area_set.t
val stats : t -> Bess_util.Stats.t
val get_page_lsn : t -> Page_id.t -> int
val set_page_lsn : t -> Page_id.t -> int -> unit

(** Pinned access to a page through the cache. *)
val with_page : t -> Page_id.t -> (Bess_cache.Cache.slot -> 'a) -> 'a

(** Copy of a page's current contents (for shipping to clients). *)
val read_page : t -> Page_id.t -> Bytes.t

(** All pages of one disk segment, in order. *)
val read_segment : t -> Bess_storage.Seg_addr.t -> Bytes.t list

(** Log one physical update and apply it to the cached page; returns the
    record's LSN. *)
val apply_update :
  t -> txn:int -> prev_lsn:int -> Page_id.t -> offset:int -> before:Bytes.t -> after:Bytes.t -> int

(** Append COMMIT + END and register a durability ticket with the group
    scheduler; the commit may be acknowledged only after the ticket is
    awaited. Returns the commit LSN and the ticket. *)
val log_commit_begin : t -> txn:int -> prev_lsn:int -> int * Bess_wal.Group_commit.ticket

(** [log_commit_begin] followed by {!await_commit}: append COMMIT, make
    it durable per the group policy, append END; returns the commit LSN. *)
val log_commit : t -> txn:int -> prev_lsn:int -> int

(** Append PREPARE and make it durable via the scheduler (2PC phase 1 —
    the vote is a synchronous acknowledgement); returns its LSN. *)
val log_prepare : t -> txn:int -> prev_lsn:int -> coordinator:int -> int

(** The abstract page interface ARIES recovery and rollback drive. *)
val page_io : t -> Bess_wal.Recovery.page_io

(** Roll back one transaction in place with CLRs; returns updates undone. *)
val rollback : t -> txn:int -> last_lsn:int -> int

(** Fuzzy checkpoint recording the given active-transaction table and the
    cache's dirty pages. *)
val checkpoint : t -> active:(int * int) list -> unit

(** Crash simulation: discard all volatile state (cache contents, page
    LSNs, unforced log tail). *)
val crash : t -> unit

(** ARIES restart: analysis, redo, undo. *)
val recover : t -> Bess_wal.Recovery.outcome

(** Force the log and write back every dirty page (orderly shutdown). *)
val flush_all : t -> unit
