(* Type descriptors (section 2.1).

   "The object header contains ... a pointer to the object's type (TP).
   Type descriptors contain the offsets of pointers within the objects
   they describe." The data-segment fault handler walks these offsets to
   find every inter-object reference and swizzle it.

   Descriptors are persistent (stored in the database catalog) and are
   identified by a small integer; slot TP fields store that id. *)

type t = {
  id : int;
  name : string;
  size : int; (* instance size in bytes; 0 = variable-sized (byte data) *)
  ref_offsets : int array; (* byte offsets of 8-byte references within instances *)
}

let make ~id ~name ~size ~ref_offsets =
  Array.iter
    (fun off ->
      if off < 0 || (size > 0 && off + 8 > size) then
        invalid_arg "Type_desc.make: reference offset out of bounds")
    ref_offsets;
  { id; name; size; ref_offsets }

(* The distinguished descriptor for raw byte objects: no references. *)
let bytes_type = { id = 0; name = "bytes"; size = 0; ref_offsets = [||] }

let pp ppf t =
  Fmt.pf ppf "%s(id=%d,size=%d,refs=[%a])" t.name t.id t.size
    Fmt.(array ~sep:(any ";") int)
    t.ref_offsets

let encoded_size t = 4 + 4 + Bess_util.Codec.string_size t.name + 4 + (4 * Array.length t.ref_offsets)

let encode b off t =
  Bess_util.Codec.set_u32 b off t.id;
  Bess_util.Codec.set_u32 b (off + 4) t.size;
  let off = Bess_util.Codec.set_string b (off + 8) t.name in
  Bess_util.Codec.set_u32 b off (Array.length t.ref_offsets);
  Array.iteri (fun i r -> Bess_util.Codec.set_u32 b (off + 4 + (4 * i)) r) t.ref_offsets;
  off + 4 + (4 * Array.length t.ref_offsets)

let decode b off =
  let id = Bess_util.Codec.get_u32 b off in
  let size = Bess_util.Codec.get_u32 b (off + 4) in
  let name, off = Bess_util.Codec.get_string b (off + 8) in
  let n = Bess_util.Codec.get_u32 b off in
  let ref_offsets = Array.init n (fun i -> Bess_util.Codec.get_u32 b (off + 4 + (4 * i))) in
  ({ id; name; size; ref_offsets }, off + 4 + (4 * n))

(* Registry: id -> descriptor, name -> descriptor. *)
type registry = {
  by_id : (int, t) Hashtbl.t;
  by_name : (string, t) Hashtbl.t;
  mutable next_id : int;
}

let registry_create () =
  let r = { by_id = Hashtbl.create 16; by_name = Hashtbl.create 16; next_id = 1 } in
  Hashtbl.replace r.by_id 0 bytes_type;
  Hashtbl.replace r.by_name "bytes" bytes_type;
  r

let register r ~name ~size ~ref_offsets =
  if Hashtbl.mem r.by_name name then invalid_arg "Type_desc.register: duplicate type name";
  let t = make ~id:r.next_id ~name ~size ~ref_offsets in
  r.next_id <- r.next_id + 1;
  Hashtbl.replace r.by_id t.id t;
  Hashtbl.replace r.by_name name t;
  t

(* Re-install a decoded descriptor (catalog load). *)
let install r t =
  Hashtbl.replace r.by_id t.id t;
  Hashtbl.replace r.by_name t.name t;
  if t.id >= r.next_id then r.next_id <- t.id + 1

let find r id =
  match Hashtbl.find_opt r.by_id id with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Type_desc.find: unknown type id %d" id)

let find_by_name r name = Hashtbl.find_opt r.by_name name

let registry_to_list r =
  Hashtbl.fold (fun _ t acc -> t :: acc) r.by_id [] |> List.sort (fun a b -> compare a.id b.id)
