(** The process-wide metrics registry.

    Substrates register their {!Bess_util.Stats.t} (or a standalone
    {!Bess_util.Histogram.t}, or a gauge callback) under a namespaced key
    at construction time; [snapshot]/[diff] then turn the whole system's
    counters into before/after deltas for a workload, with gauges sampled
    at snapshot time reporting state (cache occupancy, WAL backlog, ...)
    rather than flow. Registering an existing key replaces the binding, so
    the registry reflects the most recently created instance of each
    namespace. *)

type t

val create : unit -> t

(** The default, process-wide registry that substrates register into. *)
val default : t

(** Legal first components of metric names ("cache", "wal", "lock", ...).
    The metric-name hygiene test greps source literals against this table,
    the same way span kinds are checked against {!Span.kinds}. *)
val metric_namespaces : string list

(** [register_stats key stats] binds every counter and histogram of
    [stats] under [key]. Snapshot names flatten as [key ^ "." ^ counter]
    unless the counter already carries the [key ^ "."] prefix. *)
val register_stats : ?registry:t -> string -> Bess_util.Stats.t -> unit

(** [register_histogram key name h] binds a standalone histogram under
    [flatten_key key name] — the same flattening rule as counters, so a
    histogram can never clobber a stats namespace binding. *)
val register_histogram : ?registry:t -> string -> string -> Bess_util.Histogram.t -> unit

(** [register_gauge key name fn] binds a sampled-on-demand gauge under
    [flatten_key key name]. [fn] must be a pure read of substrate state:
    it runs at every snapshot, including from the {!Series} sampler. A
    callback that raises is dropped from the snapshot, not reported as 0. *)
val register_gauge : ?registry:t -> string -> string -> (unit -> int) -> unit

(** Remove the whole namespace [key]: its stats binding plus every
    standalone histogram and gauge flattened under [key ^ "."]. *)
val unregister : ?registry:t -> string -> unit

val keys : ?registry:t -> unit -> string list

(** [with_fresh f] empties the registry (default: the process-wide one)
    for the duration of [f] and restores the previous bindings on the
    way out, exceptions included — scoped isolation for tests and bench
    workloads that register substrates of their own. *)
val with_fresh : ?registry:t -> (unit -> 'a) -> 'a

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_mean : float;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_p999 : int;
  h_buckets : (int * int) list;
      (** cumulative [(inclusive upper bound, count)] pairs up to the
          last non-empty power-of-two bucket *)
}

type snapshot

(** Sorted [(flattened name, value)] counters of a snapshot. *)
val counters : snapshot -> (string * int) list

val histograms : snapshot -> (string * hist_summary) list

(** Sorted [(flattened name, value)] gauges, sampled when the snapshot
    was taken. *)
val gauges : snapshot -> (string * int) list

val snapshot : ?registry:t -> unit -> snapshot

(** [iter_histograms f] calls [f flattened_name hist] for every live
    histogram — those inside registered stats sources and standalone
    ones. The {!Series} sampler reads raw buckets through this to
    compute per-window tail percentiles from bucket deltas. *)
val iter_histograms : ?registry:t -> (string -> Bess_util.Histogram.t -> unit) -> unit

(** Per-counter deltas, [after - before] (zero deltas dropped unless
    [keep_zeros]; missing counters count from 0; shrunken counters yield
    negative deltas). Histogram count/sum are deltas (or the [after]
    instance whole when its count shrank, i.e. the substrate was
    re-created mid-window); the remaining summary fields are reported
    from [after]. Gauges are state, not flow: [after]'s values are
    carried through unchanged. *)
val diff : ?keep_zeros:bool -> before:snapshot -> after:snapshot -> unit -> snapshot

val pp_hist_summary : Format.formatter -> hist_summary -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit

(** Render a snapshot as one JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)
val json_of_snapshot : snapshot -> string

(** Render a snapshot in Prometheus text exposition format: dots map to
    underscores under a ["bess_"] prefix, labeled counters
    (["net.calls{1->2}"]) become [{label="..."}] series, histograms
    render as summaries (quantile series plus cumulative
    [_bucket{le="..."}] lines from the power-of-two bounds and
    [_sum]/[_count]). *)
val prom_of_snapshot : snapshot -> string

(** Escape and quote a string as a JSON string literal. *)
val json_string : string -> string
