lib/baseline/greedy_reserve.ml: Bess_util Bess_vmem Hashtbl List
