(* Simulated client/server transport.

   BeSS runs on a multi-client multi-server network (Figure 2). The
   experiments that compare operation modes and callback locking are
   dominated by *message counts* and *bytes shipped*, so the transport
   models exactly that: synchronous RPC between registered endpoints, with
   per-message and per-byte costs accumulated on a simulated clock, plus
   full message/byte accounting per endpoint pair.

   Endpoints are in-process: a call executes the destination handler
   directly (handlers may issue nested calls -- a node server forwarding a
   fetch to the owning server, a 2PC coordinator contacting participants).
   Cost parameters default to a LAN-ish ratio: crossing processes is three
   orders of magnitude more expensive than a function call. *)

module Span = Bess_obs.Span

type ('req, 'resp) handler = src:int -> 'req -> 'resp

type ('req, 'resp) t = {
  handlers : (int, ('req, 'resp) handler) Hashtbl.t;
  req_cost : 'req -> int; (* payload size in bytes, for accounting *)
  resp_cost : 'resp -> int;
  per_message_ns : int;
  per_byte_ns : int;
  mutable clock_ns : int;
  mutable in_flight : int; (* messages currently being delivered (nested RPCs stack) *)
  stats : Bess_util.Stats.t;
}

let create ?(per_message_ns = 150_000) ?(per_byte_ns = 10) ~req_cost ~resp_cost () =
  let stats = Bess_util.Stats.create () in
  Bess_obs.Registry.register_stats "net" stats;
  let t =
    {
      handlers = Hashtbl.create 16;
      req_cost;
      resp_cost;
      per_message_ns;
      per_byte_ns;
      clock_ns = 0;
      in_flight = 0;
      stats;
    }
  in
  Bess_obs.Registry.register_gauge "net" "net.in_flight" (fun () -> t.in_flight);
  t

let in_flight t = t.in_flight

(* Bracket one delivery: the synchronous transport means the gauge reads
   as the nesting depth of in-progress messages (a node server
   forwarding a fetch shows 2). *)
let delivering t f =
  t.in_flight <- t.in_flight + 1;
  Fun.protect ~finally:(fun () -> t.in_flight <- t.in_flight - 1) f

(* Re-registering an endpoint replaces its handler: a client that
   attaches to several servers keeps one endpoint whose successive sink
   closures are behaviourally identical. *)
let register t ~id handler = Hashtbl.replace t.handlers id handler

let unregister t ~id = Hashtbl.remove t.handlers id

let stats t = t.stats
let clock_ns t = t.clock_ns
let reset_clock t = t.clock_ns <- 0

exception No_such_endpoint of int

(* A dropped request or reply: the caller cannot tell which, only that
   no answer came back within the (modeled) timeout — exactly the
   at-most-once ambiguity the Remote retry loop exists to resolve. *)
exception Timeout of int (* dst *)

let account t ~bytes =
  let cost = t.per_message_ns + (bytes * t.per_byte_ns) in
  t.clock_ns <- t.clock_ns + cost;
  (* Wire time is the dominant cost model, so it also drives the
     process-wide span clock: net.wire spans get their true width. *)
  Span.advance_ns cost;
  Bess_util.Stats.incr t.stats "net.messages";
  Bess_util.Stats.add t.stats "net.bytes" bytes

let route_attrs src dst =
  if Span.enabled () then [ ("src", string_of_int src); ("dst", string_of_int dst) ] else []

(* A message to a vanished endpoint still crossed the wire before
   bouncing: account it (the bytes were sent; only the answer never
   will be) before raising. *)
let dead_letter t ~bytes dst =
  account t ~bytes;
  Bess_util.Stats.incr t.stats "net.dead_letters";
  raise (No_such_endpoint dst)

(* Fault sites, consulted per delivery (all disarmed by default):
   - [net.delay]: a latency spike — extra multiples of the per-message
     cost on the simulated clock, nothing lost;
   - [net.drop_request]: the request vanishes before the handler runs;
   - [net.dup]: the request is delivered twice (the handler really runs
     twice — server-side dedup is what makes this safe);
   - [net.drop_reply]: the handler ran, its side effects stand, but the
     reply never arrives.
   Both drops surface as [Timeout]: the caller cannot distinguish them,
   which is precisely what forces retries to be exactly-once. *)
let inject_delay t =
  if Bess_fault.Fault.fire "net.delay" then begin
    let spike = (1 + Bess_fault.Fault.draw "net.delay" ~bound:20) * t.per_message_ns in
    t.clock_ns <- t.clock_ns + spike;
    Span.advance_ns spike;
    Bess_util.Stats.incr t.stats "net.delays";
    Bess_util.Stats.add t.stats "net.delay_ns" spike
  end

(* Synchronous RPC: one request message, one reply message. The call
   stamps the outgoing request with a net.rpc span whose net.wire
   children separate wire time from the handler's own time. *)
let call t ~src ~dst req =
  match Hashtbl.find_opt t.handlers dst with
  | None -> dead_letter t ~bytes:(t.req_cost req) dst
  | Some handler ->
      Span.with_span ~attrs:(route_attrs src dst) ~kind:"net.rpc" (fun () ->
          delivering t @@ fun () ->
          inject_delay t;
          Span.with_span ~kind:"net.wire" (fun () -> account t ~bytes:(t.req_cost req));
          if Bess_fault.Fault.fire "net.drop_request" then begin
            Bess_util.Stats.incr t.stats "net.dropped_requests";
            raise (Timeout dst)
          end;
          Bess_util.Stats.incr_labeled t.stats "net.calls" ~label:(Printf.sprintf "%d->%d" src dst);
          let resp = Span.with_span ~kind:"net.handler" (fun () -> handler ~src req) in
          let resp =
            if Bess_fault.Fault.fire "net.dup" then begin
              Bess_util.Stats.incr t.stats "net.duplicates";
              Span.with_span ~kind:"net.wire" (fun () -> account t ~bytes:(t.req_cost req));
              Span.with_span ~kind:"net.handler" (fun () -> handler ~src req)
            end
            else resp
          in
          Span.with_span ~kind:"net.wire" (fun () -> account t ~bytes:(t.resp_cost resp));
          if Bess_fault.Fault.fire "net.drop_reply" then begin
            Bess_util.Stats.incr t.stats "net.dropped_replies";
            raise (Timeout dst)
          end;
          resp)

(* One-way message (server-initiated callbacks): still executes the
   handler synchronously, but only one message is accounted. *)
let send t ~src ~dst req =
  match Hashtbl.find_opt t.handlers dst with
  | None -> dead_letter t ~bytes:(t.req_cost req) dst
  | Some handler ->
      Span.with_span ~attrs:(route_attrs src dst) ~kind:"net.send" (fun () ->
          delivering t @@ fun () ->
          inject_delay t;
          Span.with_span ~kind:"net.wire" (fun () -> account t ~bytes:(t.req_cost req));
          if Bess_fault.Fault.fire "net.drop_request" then begin
            Bess_util.Stats.incr t.stats "net.dropped_requests";
            raise (Timeout dst)
          end;
          Bess_util.Stats.incr_labeled t.stats "net.sends" ~label:(Printf.sprintf "%d->%d" src dst);
          ignore (Span.with_span ~kind:"net.handler" (fun () -> handler ~src req)))

let messages t = Bess_util.Stats.get t.stats "net.messages"
let bytes t = Bess_util.Stats.get t.stats "net.bytes"
