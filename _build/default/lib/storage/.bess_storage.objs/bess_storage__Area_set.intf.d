lib/storage/area_set.mli: Area Bess_util Bytes Seg_addr
