lib/lock/callback.mli: Bess_util Lock_mgr Lock_mode
