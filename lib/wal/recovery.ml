(* ARIES recovery: analysis, redo, undo (section 3: "recovery is based on
   an ARIES-like [21] write-ahead log protocol").

   Recovery is written against an abstract page store so it can drive both
   the real cache/storage stack and the tiny fake stores used in tests.
   Pages carry an LSN; redo reapplies a record only when the page LSN is
   older ("repeating history"); undo rolls back loser transactions writing
   compensation records whose undo-next pointers make rollback idempotent
   across repeated crashes. Transactions in the prepared state survive
   recovery as in-doubt -- their fate belongs to the 2PC coordinator. *)

type page_io = {
  page_lsn : Log_record.page_id -> int;
  set_page_lsn : Log_record.page_id -> int -> unit;
  write : Log_record.page_id -> offset:int -> Bytes.t -> unit;
}

type txn_status = Running | Committed | Prepared

type outcome = {
  winners : int list; (* committed, made durable *)
  losers : int list; (* rolled back *)
  in_doubt : int list; (* prepared, awaiting coordinator *)
  redone : int;
  undone : int;
}

(* ---- Analysis ----------------------------------------------------------- *)

type analysis = {
  att : (int, txn_status * int) Hashtbl.t; (* txn -> status, last_lsn *)
  dpt : (Log_record.page_id, int) Hashtbl.t; (* page -> recovery lsn *)
  redo_from : int;
}

let analyse log =
  let att = Hashtbl.create 16 in
  let dpt = Hashtbl.create 64 in
  (* Find the last complete checkpoint to seed tables; scanning from the
     log start is always correct, the checkpoint only shortens the scan. *)
  let ckpt_start = ref 0 in
  let ckpt_record = ref None in
  Log.iter log (fun lsn (r : Log_record.t) ->
      match r.body with
      | Log_record.Begin_checkpoint -> ckpt_start := lsn
      | Log_record.End_checkpoint e ->
          ckpt_record := Some (!ckpt_start, e.active, e.dirty)
      | _ -> ());
  let scan_from =
    match !ckpt_record with
    | Some (start, active, dirty) ->
        List.iter (fun (txn, last) -> Hashtbl.replace att txn (Running, last)) active;
        List.iter
          (fun (p, rec_lsn) -> if not (Hashtbl.mem dpt p) then Hashtbl.add dpt p rec_lsn)
          dirty;
        start
    | None -> 1
  in
  Log.iter ~from:scan_from log (fun lsn (r : Log_record.t) ->
      let touch_page (p : Log_record.page_id) =
        if not (Hashtbl.mem dpt p) then Hashtbl.add dpt p lsn
      in
      match r.body with
      | Update u ->
          Hashtbl.replace att u.txn (Running, lsn);
          touch_page u.page
      | Clr c ->
          Hashtbl.replace att c.txn (Running, lsn);
          touch_page c.page
      | Prepare p ->
          Hashtbl.replace att p.txn (Prepared, lsn)
      | Commit c -> Hashtbl.replace att c.txn (Committed, lsn)
      | Abort a ->
          (* An abort record alone does not finish the rollback; keep the
             transaction as a loser so undo completes it. *)
          let last = match Hashtbl.find_opt att a.txn with Some (_, l) -> l | None -> lsn in
          Hashtbl.replace att a.txn (Running, last)
      | End e -> Hashtbl.remove att e.txn
      | Decision _ (* coordinator-log record; carries no page or txn state *)
      | Begin_checkpoint | End_checkpoint _ -> ());
  let redo_from = Hashtbl.fold (fun _ rec_lsn acc -> Stdlib.min acc rec_lsn) dpt max_int in
  { att; dpt; redo_from = (if redo_from = max_int then Log.last_lsn log + 1 else redo_from) }

(* ---- Redo ---------------------------------------------------------------- *)

let redo log io (a : analysis) =
  let redone = ref 0 in
  Log.iter ~from:a.redo_from log (fun lsn (r : Log_record.t) ->
      let apply (p : Log_record.page_id) offset image =
        match Hashtbl.find_opt a.dpt p with
        | Some rec_lsn when lsn >= rec_lsn ->
            if io.page_lsn p < lsn then begin
              io.write p ~offset image;
              io.set_page_lsn p lsn;
              incr redone
            end
        | _ -> ()
      in
      match r.body with
      | Update u -> apply u.page u.offset u.after
      | Clr c -> apply c.page c.offset c.image
      | _ -> ());
  !redone

(* ---- Undo ---------------------------------------------------------------- *)

(* Undo a set of loser transactions from their last LSNs, writing CLRs.
   Shared by crash recovery and by normal transaction rollback. *)
let undo_losers log io losers =
  let undone = ref 0 in
  (* next undo LSN per txn *)
  let next = Hashtbl.create 8 in
  List.iter (fun (txn, lsn) -> if lsn > 0 then Hashtbl.replace next txn lsn) losers;
  let pick_max () =
    Hashtbl.fold
      (fun txn lsn acc ->
        match acc with Some (_, best) when best >= lsn -> acc | _ -> Some (txn, lsn))
      next None
  in
  let rec loop () =
    match pick_max () with
    | None -> ()
    | Some (txn, lsn) ->
        let record, _ = Log.read log lsn in
        (match record.body with
        | Update u ->
            assert (u.txn = txn);
            (* Compensate: restore the before image, log a redo-only CLR
               pointing past the record just undone. *)
            let clr : Log_record.t =
              {
                prev_lsn = lsn (* chain CLR after the undone record *);
                body =
                  Clr { txn; page = u.page; offset = u.offset; image = u.before;
                        undo_next = record.prev_lsn };
              }
            in
            let clr_lsn = Log.append log clr in
            io.write u.page ~offset:u.offset u.before;
            io.set_page_lsn u.page clr_lsn;
            incr undone;
            if record.prev_lsn = 0 then Hashtbl.remove next txn
            else Hashtbl.replace next txn record.prev_lsn
        | Clr c ->
            (* Skip over already-undone work. *)
            if c.undo_next = 0 then Hashtbl.remove next txn
            else Hashtbl.replace next txn c.undo_next
        | Abort _ | Prepare _ | Commit _ ->
            if record.prev_lsn = 0 then Hashtbl.remove next txn
            else Hashtbl.replace next txn record.prev_lsn
        | End _ | Decision _ | Begin_checkpoint | End_checkpoint _ -> Hashtbl.remove next txn);
        loop ()
  in
  loop ();
  (* Write END records for fully rolled-back losers. *)
  List.iter
    (fun (txn, lsn) ->
      if lsn > 0 then ignore (Log.append log { prev_lsn = 0; body = End { txn } }))
    losers;
  !undone

(* Normal-operation rollback of one transaction (used by Txn.abort): undo
   from its last LSN, then log ABORT+END. *)
let rollback_txn log io ~txn ~last_lsn =
  ignore (Log.append log { prev_lsn = last_lsn; body = Abort { txn } });
  undo_losers log io [ (txn, last_lsn) ]

(* ---- Full restart -------------------------------------------------------- *)

let recover log io =
  let a = analyse log in
  let redone = redo log io a in
  let winners = ref [] and losers = ref [] and in_doubt = ref [] in
  Hashtbl.iter
    (fun txn (status, last) ->
      match status with
      | Committed ->
          winners := txn :: !winners;
          ignore (Log.append log { prev_lsn = last; body = End { txn } })
      | Prepared -> in_doubt := txn :: !in_doubt
      | Running -> losers := (txn, last) :: !losers)
    a.att;
  let undone = undo_losers log io !losers in
  Log.flush log ();
  {
    winners = List.sort compare !winners;
    losers = List.sort compare (List.map fst !losers);
    in_doubt = List.sort compare !in_doubt;
    redone;
    undone;
  }
