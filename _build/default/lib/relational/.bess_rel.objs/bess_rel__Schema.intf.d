lib/relational/schema.mli: Bytes Format
