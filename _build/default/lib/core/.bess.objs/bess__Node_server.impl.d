lib/core/node_server.ml: Array Bess_cache Bess_lock Bess_util Bess_vmem Bess_wal Bytes Fetcher Hashtbl List Option Server
