(** Classic second-chance clock over cache slots — the baseline the
    paper's frame-state clock replaces (section 4.2), kept for comparison
    (experiment E4) and for pools whose accesses are library-mediated.
    Requires {!note_access} on every logical access. *)

type t

(** Installs itself as [cache]'s victim chooser. *)
val create : Cache.t -> t

(** Set the reference bit of a slot (call on every access). *)
val note_access : t -> int -> unit

(** Choose a victim: sweeps clearing reference bits, skipping pinned
    slots; [None] when everything is pinned. *)
val choose : t -> int option
