(* bessctl: command-line administration for file-backed BeSS databases.

     bessctl create  DIR [--areas N] [--page-size B]   create a database
     bessctl info    DIR                               catalog summary
     bessctl seed    DIR [--objects N]                 load a demo dataset
     bessctl scan    DIR --file NAME                   scan a file, print stats
     bessctl verify  DIR                               structural checks
     bessctl compact DIR                               compact every segment
     bessctl stats   DIR [--json|--prom]               live metrics registry
     bessctl trace   DIR [--spans] [--chrome FILE]     causal span timeline
     bessctl top     DIR [--passes N] [--json]         busiest metrics per window
     bessctl load    DIR [--workload W] [--clients N]  closed-loop load generator
     bessctl slow    DIR [--workload W] [--clients N]  slowest txns with blame breakdown
     bessctl mrc     DIR [--workload W] [--rate-bits B] online miss-ratio curve vs measured
     bessctl heat    DIR [--workload W] [--top K]      hottest pages, decayed frequencies
     bessctl flightrec FILE [--last N]                 replay a black-box dump

   Databases live in a directory: area_*.bess files, wal.log, and
   catalog.meta. *)

open Cmdliner

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Database directory")

let with_db dir f =
  let db = Bess.Db.open_dir ~db_id:1 dir in
  Fun.protect ~finally:(fun () -> Bess.Db.close db) (fun () -> f db)

(* ---- create ---- *)

let create_cmd =
  let areas = Arg.(value & opt int 1 & info [ "areas" ] ~doc:"Number of storage areas") in
  let page_size = Arg.(value & opt int 4096 & info [ "page-size" ] ~doc:"Page size in bytes") in
  let run dir areas page_size =
    let db = Bess.Db.create_dir ~page_size ~n_areas:areas ~db_id:1 dir in
    Bess.Db.close db;
    Printf.printf "created database in %s (%d areas, %dB pages)\n" dir areas page_size
  in
  Cmd.v (Cmd.info "create" ~doc:"Create a file-backed database")
    Term.(const run $ dir_arg $ areas $ page_size)

(* ---- info ---- *)

let info_cmd =
  let run dir =
    with_db dir (fun db ->
        let cat = Bess.Db.catalog db in
        Printf.printf "database %d (host %d)\n" (Bess.Catalog.db_id cat) (Bess.Catalog.host cat);
        Printf.printf "segments: %d\n" (Bess.Catalog.n_segments cat);
        List.iter
          (fun (f : Bess.Catalog.file_info) ->
            Printf.printf "  file %-16s id=%d area=%s segments=%d\n" f.file_name f.file_id
              (match f.area_id with Some a -> string_of_int a | None -> "multifile")
              (List.length f.seg_ids))
          (Bess.Catalog.files cat);
        List.iter
          (fun (name, oid) -> Fmt.pr "  root %-16s -> %a@." name Bess.Oid.pp oid)
          (Bess.Catalog.roots cat);
        List.iter
          (fun area_id ->
            let a = Bess_storage.Area_set.find (Bess.Db.areas db) area_id in
            Printf.printf "  area %d: %d/%d pages used, %d extents\n" area_id
              (Bess_storage.Area.capacity_pages a - Bess_storage.Area.free_pages a)
              (Bess_storage.Area.capacity_pages a)
              (Bess_storage.Area.n_extents a))
          (Bess.Db.area_ids db))
  in
  Cmd.v (Cmd.info "info" ~doc:"Show catalog and storage summary") Term.(const run $ dir_arg)

(* ---- seed ---- *)

let group_commit_arg =
  let policy_conv =
    let parse s =
      match Bess_wal.Group_commit.policy_of_string s with
      | Ok p -> Ok p
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, Bess_wal.Group_commit.pp_policy)
  in
  Arg.(
    value
    & opt policy_conv Bess_wal.Group_commit.Immediate
    & info [ "group-commit" ] ~docv:"POLICY"
        ~doc:
          "Commit force-scheduling policy: $(b,immediate) (default), $(b,group:N) to coalesce N \
           committers per log force, or $(b,window:NS) to batch a time window")

let seed_cmd =
  let objects = Arg.(value & opt int 1000 & info [ "objects" ] ~doc:"Objects to create") in
  let run dir objects policy =
    with_db dir (fun db ->
        Bess.Server.set_group_policy (Bess.Db.server db) policy;
        let s = Bess.Db.session db in
        let ty =
          match Bess.Type_desc.find_by_name (Bess.Catalog.types (Bess.Db.catalog db)) "demo" with
          | Some ty -> ty
          | None ->
              Bess.Type_desc.register
                (Bess.Catalog.types (Bess.Db.catalog db))
                ~name:"demo" ~size:32 ~ref_offsets:[| 0 |]
        in
        Bess.Session.begin_txn s;
        let f =
          match Bess.Catalog.find_file_by_name (Bess.Db.catalog db) "demo" with
          | Some _ -> Bess.Bess_file.open_existing s ~name:"demo" ()
          | None -> Bess.Bess_file.create s ~name:"demo" ()
        in
        let prev = ref None in
        for i = 1 to objects do
          let o = Bess.Bess_file.new_object f ty ~size:32 in
          Bess_vmem.Vmem.write_i64 (Bess.Session.mem s) (Bess.Session.obj_data s o + 8) i;
          ignore i;
          (match !prev with
          | Some p -> Bess.Session.write_ref s ~data_addr:(Bess.Session.obj_data s p) (Some o)
          | None -> Bess.Session.set_root s ~name:"demo_head" o);
          prev := Some o
        done;
        Bess.Session.commit s;
        let wal = Bess_wal.Log.stats (Bess.Store.log (Bess.Server.store (Bess.Db.server db))) in
        Printf.printf "seeded %d demo objects into file %S (%s policy, %d log forces)\n" objects
          "demo"
          (Bess_wal.Group_commit.policy_to_string policy)
          (Bess_util.Stats.get wal "log.forces"))
  in
  Cmd.v (Cmd.info "seed" ~doc:"Load a linked demo dataset")
    Term.(const run $ dir_arg $ objects $ group_commit_arg)

(* ---- scan ---- *)

let scan_cmd =
  let fname = Arg.(value & opt string "demo" & info [ "file" ] ~doc:"BeSS file name") in
  let run dir fname =
    with_db dir (fun db ->
        let s = Bess.Db.session db in
        Bess.Session.begin_txn s;
        let f = Bess.Bess_file.open_existing s ~name:fname () in
        let n = ref 0 and bytes = ref 0 in
        Bess.Bess_file.iter f (fun o ->
            incr n;
            bytes := !bytes + Bess.Session.obj_size s o);
        Bess.Session.commit s;
        Printf.printf "file %S: %d objects, %d bytes of data, %d segments\n" fname !n !bytes
          (List.length (Bess.Bess_file.seg_ids f));
        let st = Bess.Session.stats s in
        Printf.printf "faults: %d slotted, %d data\n"
          (Bess_util.Stats.get st "session.slotted_faults")
          (Bess_util.Stats.get st "session.data_faults"))
  in
  Cmd.v (Cmd.info "scan" ~doc:"Scan a BeSS file") Term.(const run $ dir_arg $ fname)

(* ---- verify ---- *)

let verify_cmd =
  let run dir =
    with_db dir (fun db ->
        let s = Bess.Db.session db in
        Bess.Session.begin_txn s;
        let cat = Bess.Db.catalog db in
        let problems = ref 0 in
        List.iter
          (fun seg_id ->
            let seg = Bess.Session.get_seg s ~db_id:(Bess.Db.db_id db) ~seg_id in
            Bess.Session.ensure_slotted s seg;
            let n = Bess.Session.read_header_u32 s seg ~field:Bess.Layout.hdr_n_slots in
            let used = Bess.Session.read_header_u32 s seg ~field:Bess.Layout.hdr_data_used in
            let cap = seg.Bess.Session.data_disk.Bess_storage.Seg_addr.npages * 4096 in
            if used > cap then begin
              incr problems;
              Printf.printf "  segment %d: data_used %d exceeds capacity %d\n" seg_id used cap
            end;
            for idx = 0 to n - 1 do
              let flags = Bess.Session.read_slot_u32 s seg idx ~field:Bess.Layout.slot_flags in
              if flags land Bess.Layout.flag_used <> 0 then begin
                let dp = Bess.Session.read_slot_i64 s seg idx ~field:Bess.Layout.slot_dp in
                let transparent =
                  flags land (Bess.Layout.flag_large lor Bess.Layout.flag_vlarge) <> 0
                in
                if (not transparent) && (dp < seg.Bess.Session.data_base || dp >= seg.Bess.Session.data_base + cap)
                then begin
                  incr problems;
                  Printf.printf "  segment %d slot %d: DP out of range\n" seg_id idx
                end
              end
            done)
          (Bess.Catalog.segment_ids cat);
        Bess.Session.commit s;
        if !problems = 0 then Printf.printf "ok: %d segments verified clean\n" (Bess.Catalog.n_segments cat)
        else Printf.printf "%d problems found\n" !problems)
  in
  Cmd.v (Cmd.info "verify" ~doc:"Structural integrity checks") Term.(const run $ dir_arg)

(* ---- stats ---- *)

let stats_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry snapshot as JSON") in
  let prom =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Emit the registry snapshot in Prometheus text exposition format")
  in
  let run dir json prom =
    with_db dir (fun db ->
        (* Touch every segment once so the snapshot reflects a full pass
           over the database, not an idle process. *)
        let s = Bess.Db.session db in
        Bess.Session.begin_txn s;
        List.iter
          (fun seg_id ->
            let seg = Bess.Session.get_seg s ~db_id:(Bess.Db.db_id db) ~seg_id in
            Bess.Session.ensure_slotted s seg)
          (Bess.Catalog.segment_ids (Bess.Db.catalog db));
        Bess.Session.commit s;
        let snap = Bess_obs.Registry.snapshot () in
        if prom then print_string (Bess_obs.Registry.prom_of_snapshot snap)
        else if json then print_string (Bess_obs.Registry.json_of_snapshot snap ^ "\n")
        else begin
          Fmt.pr "%a@." Bess_obs.Registry.pp_snapshot snap;
          match Bess.Event.trace (Bess.Session.hooks s) with
          | None -> ()
          | Some tr ->
              let entries = Bess_obs.Trace.to_list tr in
              let n = List.length entries in
              let tail k l =
                let rec drop i = function
                  | _ :: rest when i > 0 -> drop (i - 1) rest
                  | l -> l
                in
                drop (Stdlib.max 0 (List.length l - k)) l
              in
              Fmt.pr "@.trace (%d events recorded, last %d):@." n (Stdlib.min n 10);
              List.iter (fun e -> Fmt.pr "  %a@." Bess_obs.Trace.pp_entry e) (tail 10 entries)
        end)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print the live metrics registry (counters, histograms, trace tail)")
    Term.(const run $ dir_arg $ json $ prom)

(* ---- trace ---- *)

let trace_cmd =
  let spans =
    Arg.(value & flag & info [ "spans" ] ~doc:"Print the slowest transaction's span tree")
  in
  let chrome =
    Arg.(value & opt (some string) None
         & info [ "chrome" ] ~docv:"FILE"
             ~doc:"Write the collected spans as Chrome trace_event JSON to $(docv)")
  in
  let run dir spans chrome =
    let c = Bess_obs.Span.create () in
    Bess_obs.Span.install (Some c);
    Fun.protect ~finally:(fun () -> Bess_obs.Span.install None) (fun () ->
        with_db dir (fun db ->
            (* One traced transaction touching every segment: the same
               full pass `bessctl stats` makes, but timed on the span
               clock instead of counted. *)
            let s = Bess.Db.session db in
            Bess.Session.begin_txn s;
            List.iter
              (fun seg_id ->
                let seg = Bess.Session.get_seg s ~db_id:(Bess.Db.db_id db) ~seg_id in
                Bess.Session.ensure_slotted s seg)
              (Bess.Catalog.segment_ids (Bess.Db.catalog db));
            Bess.Session.commit s);
        Bess_obs.Span.finish_all c;
        (match chrome with
        | Some path ->
            let oc = open_out path in
            output_string oc (Bess_obs.Span.to_chrome_json c);
            close_out oc;
            Printf.printf "wrote %d spans to %s\n" (List.length (Bess_obs.Span.to_list c)) path
        | None -> ());
        if spans || chrome = None then
          match Bess_obs.Span.slowest c with
          | Some root -> Fmt.pr "%a@." (Bess_obs.Span.pp_tree c) root
          | None -> Printf.printf "no spans collected\n")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace one full pass over the database as a causal span timeline")
    Term.(const run $ dir_arg $ spans $ chrome)

(* ---- windowed-rate reporting (shared by top and load) ---- *)

let print_window_report ?(json = false) samples ~limit =
  match samples with
  | _ when json ->
      Printf.printf "{\"windows\":[%s]}\n"
        (String.concat "," (List.map Bess_obs.Series.json_of_sample samples))
  | [] -> Printf.printf "no windows sampled (no simulated time elapsed)\n"
  | _ ->
      let total_width =
        List.fold_left (fun acc s -> acc + (s.Bess_obs.Series.w_end_ns - s.w_start_ns))
          0 samples
      in
      let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (s : Bess_obs.Series.sample) ->
          List.iter
            (fun (name, d) ->
              Hashtbl.replace totals name
                (d + Option.value ~default:0 (Hashtbl.find_opt totals name)))
            s.w_counters)
        samples;
      let last = List.nth samples (List.length samples - 1) in
      let rows =
        Hashtbl.fold (fun name total acc -> (name, total) :: acc) totals []
        |> List.filter (fun (_, total) -> total <> 0)
        |> List.sort (fun (na, a) (nb, b) ->
               match compare b a with 0 -> compare na nb | c -> c)
      in
      let shown = List.filteri (fun i _ -> i < limit) rows in
      Printf.printf "  %-36s %12s %12s %10s\n" "COUNTER" "TOTAL" "RATE/s" "LAST/s";
      List.iter
        (fun (name, total) ->
          let avg = float_of_int total *. 1e9 /. float_of_int total_width in
          let last_rate =
            Option.value ~default:0.0 (Bess_obs.Series.sample_rate last name)
          in
          Printf.printf "  %-36s %12d %12.0f %10.0f\n" name total avg last_rate)
        shown;
      if List.length rows > limit then
        Printf.printf "  ... %d more counters (raise --top)\n" (List.length rows - limit);
      (match last.w_gauges with
      | [] -> ()
      | gauges ->
          Printf.printf "  %-36s %12s\n" "GAUGE" "VALUE";
          List.iter
            (fun (name, v) -> Printf.printf "  %-36s %12d\n" name v)
            gauges);
      (match last.w_tails with
      | [] -> ()
      | tails ->
          Printf.printf "  %-36s %8s %10s %10s %10s %10s\n" "LAST-WINDOW TAIL" "COUNT" "p50"
            "p95" "p99" "p999";
          List.iter
            (fun (name, (t : Bess_obs.Series.tail)) ->
              Printf.printf "  %-36s %8d %10d %10d %10d %10d\n" name t.t_count t.t_p50
                t.t_p95 t.t_p99 t.t_p999)
            tails)

(* ---- top ---- *)

let top_cmd =
  let passes =
    Arg.(value & opt int 5 & info [ "passes" ] ~doc:"Full-database passes to sample")
  in
  let window_us =
    Arg.(value & opt int 100
         & info [ "window-us" ] ~docv:"US" ~doc:"Sampling window in simulated microseconds")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Counters to show (busiest first)")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the sampled windows as JSON")
  in
  let run dir passes window_us limit json =
    let series =
      Bess_obs.Series.create ~capacity:4096 ~window_ns:(Stdlib.max 1 window_us * 1000) ()
    in
    Bess_obs.Series.install (Some series);
    Fun.protect ~finally:(fun () -> Bess_obs.Series.install None) (fun () ->
        with_db dir (fun db ->
            (* The same full pass [bessctl stats] makes, repeated with the
               cache dropped in between so every pass does real work. *)
            let s = Bess.Db.session db in
            for _ = 1 to passes do
              Bess.Session.begin_txn s;
              List.iter
                (fun seg_id ->
                  let seg = Bess.Session.get_seg s ~db_id:(Bess.Db.db_id db) ~seg_id in
                  Bess.Session.ensure_slotted s seg)
                (Bess.Catalog.segment_ids (Bess.Db.catalog db));
              Bess.Session.commit s;
              Bess.Session.drop_all_cached s
            done);
        Bess_obs.Series.flush series;
        let samples = Bess_obs.Series.to_list series in
        if not json then
          Printf.printf "top: %d windows of >=%dus simulated time, %d passes\n"
            (List.length samples) window_us passes;
        print_window_report ~json samples ~limit)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Sample repeated database passes into per-window rates and show the busiest metrics")
    Term.(const run $ dir_arg $ passes $ window_us $ limit $ json_arg)

(* ---- load ---- *)

(* Closed-loop load generator: N simulated clients on the discrete-event
   scheduler run a named workload against the database, and the same
   windowed-rate report [bessctl top] uses shows where the time went. *)

(* Working set for the load drivers: committed data pages in 128-page
   segments (extents cap contiguous allocation). *)
let seed_working_set db pages =
  let s = Bess.Db.session db in
  Bess.Session.begin_txn s;
  let acc = ref [] in
  let remaining = ref (Stdlib.max 1 pages) in
  while !remaining > 0 do
    let n = Stdlib.min 128 !remaining in
    let seg = Bess.Session.create_segment s ~slotted_pages:1 ~data_pages:n () in
    let d = seg.Bess.Session.data_disk in
    for i = 0 to n - 1 do
      acc :=
        { Bess_cache.Page_id.area = d.Bess_storage.Seg_addr.area;
          page = d.Bess_storage.Seg_addr.first_page + i }
        :: !acc
    done;
    remaining := !remaining - n
  done;
  Bess.Session.commit s;
  Bess.Session.drop_all_cached s;
  Array.of_list (List.rev !acc)

let load_workloads =
  [
    ("uniform", fun c -> { c with Bess_sched.Driver.zipf_theta = 0.0 });
    ("zipf", fun c -> { c with Bess_sched.Driver.zipf_theta = 0.8 });
    ( "hotspot",
      fun c ->
        { c with Bess_sched.Driver.zipf_theta = 0.8; hot_fraction = 0.1; hot_pages = 8 } );
    ( "churn",
      fun c ->
        { c with
          Bess_sched.Driver.zipf_theta = 0.8;
          hot_fraction = 0.1;
          hot_pages = 8;
          churn = 0.005;
        } );
  ]

(* Shared by load and slow: the e16 ablation switch, exposed so the
   poll-retry convoy can be reproduced interactively. *)
let no_handoff_arg =
  Arg.(value & flag
       & info [ "no-handoff" ]
           ~doc:
             "Disable wake-on-release lock handoff: blocked clients fall back to the \
              bounded-backoff poll-retry loop (the pre-handoff behaviour)")

let load_cmd =
  let workload_arg =
    Arg.(value & opt string "zipf"
         & info [ "workload" ] ~docv:"NAME"
             ~doc:
               "Named workload: $(b,uniform), $(b,zipf), $(b,hotspot) (zipf plus a hot set) \
                or $(b,churn) (hotspot plus session churn)")
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N" ~doc:"Simulated clients")
  in
  let txns =
    Arg.(value & opt int 50 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client")
  in
  let pages =
    Arg.(value & opt int 1024 & info [ "pages" ] ~docv:"N" ~doc:"Working-set pages to seed")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed") in
  let window_us =
    Arg.(value & opt int 1000
         & info [ "window-us" ] ~docv:"US" ~doc:"Sampling window in simulated microseconds")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Counters to show (busiest first)")
  in
  let run dir workload clients txns pages seed window_us limit no_handoff =
    match List.assoc_opt workload load_workloads with
    | None ->
        Printf.eprintf "bad --workload %S (try uniform, zipf, hotspot, churn)\n" workload;
        exit 2
    | Some shape ->
        let series =
          Bess_obs.Series.create ~capacity:4096 ~window_ns:(Stdlib.max 1 window_us * 1000) ()
        in
        with_db dir (fun db ->
            let server = Bess.Db.server db in
            Bess.Server.set_detection server `Timeout;
            if no_handoff then Bess.Server.set_lock_handoff server false;
            let page_ids = seed_working_set db pages in
            let cfg =
              shape
                { Bess_sched.Driver.default with
                  n_clients = clients;
                  txns_per_client = txns;
                  seed;
                }
            in
            Bess_obs.Series.install (Some series);
            let r =
              Fun.protect
                ~finally:(fun () -> Bess_obs.Series.install None)
                (fun () -> Bess_sched.Driver.run server ~pages:page_ids cfg)
            in
            Bess_obs.Series.flush series;
            let samples = Bess_obs.Series.to_list series in
            Printf.printf "load: %S, %d clients x %d txns over %d pages, seed %d\n" workload
              clients txns (Array.length page_ids) seed;
            Printf.printf
              "  commits %d  aborts %d  give-ups %d  indeterminate %d  churns %d\n"
              r.Bess_sched.Driver.r_commits r.r_aborts r.r_give_ups r.r_indeterminate
              r.r_disconnects;
            Printf.printf "  %.1f ms simulated, %.0f commits/s, commit p50 %.1fus p99 %.1fus\n"
              (float_of_int r.r_sim_ns /. 1e6)
              (Bess_sched.Driver.throughput r)
              (float_of_int r.r_commit_p50_ns /. 1e3)
              (float_of_int r.r_commit_p99_ns /. 1e3);
            Printf.printf "  %d windows of >=%dus simulated time\n" (List.length samples)
              window_us;
            print_window_report samples ~limit)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Run a named closed-loop workload at a given client count on the event scheduler \
          and report windowed rates")
    Term.(const run $ dir_arg $ workload_arg $ clients $ txns $ pages $ seed $ window_us
          $ limit $ no_handoff_arg)

(* ---- slow ---- *)

(* Tail-latency attribution: run the same closed-loop workload [bessctl
   load] runs, but with span tracing and the critical-path sink
   installed, and report where the slowest transactions spent their
   time, phase by phase. *)

let slow_cmd =
  let workload_arg =
    Arg.(value & opt string "zipf"
         & info [ "workload" ] ~docv:"NAME"
             ~doc:"Named workload (same set as $(b,bessctl load))")
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N" ~doc:"Simulated clients")
  in
  let txns =
    Arg.(value & opt int 50 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client")
  in
  let pages =
    Arg.(value & opt int 1024 & info [ "pages" ] ~docv:"N" ~doc:"Working-set pages to seed")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed") in
  let top_k =
    Arg.(value & opt int 10
         & info [ "slowest" ] ~docv:"K" ~doc:"Slowest transactions to capture and print")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the slow-transaction reservoir as JSON")
  in
  let run dir workload clients txns pages seed top_k json no_handoff =
    match List.assoc_opt workload load_workloads with
    | None ->
        Printf.eprintf "bad --workload %S (try uniform, zipf, hotspot, churn)\n" workload;
        exit 2
    | Some shape ->
        with_db dir (fun db ->
            let server = Bess.Db.server db in
            Bess.Server.set_detection server `Timeout;
            if no_handoff then Bess.Server.set_lock_handoff server false;
            let page_ids = seed_working_set db pages in
            let cfg =
              shape
                { Bess_sched.Driver.default with
                  n_clients = clients;
                  txns_per_client = txns;
                  seed;
                }
            in
            let coll = Bess_obs.Span.create () in
            let cp = Bess_obs.Critpath.create ~top_k () in
            Bess_obs.Span.install (Some coll);
            Bess_obs.Critpath.install (Some cp);
            let r =
              Fun.protect
                ~finally:(fun () ->
                  Bess_obs.Critpath.install None;
                  Bess_obs.Span.install None)
                (fun () -> Bess_sched.Driver.run server ~pages:page_ids cfg)
            in
            if json then print_string (Bess_obs.Critpath.json_of_slow cp ^ "\n")
            else begin
              Printf.printf "slow: %S, %d clients x %d txns over %d pages, seed %d\n" workload
                clients txns (Array.length page_ids) seed;
              Printf.printf "  commits %d  aborts %d  give-ups %d  indeterminate %d\n"
                r.Bess_sched.Driver.r_commits r.r_aborts r.r_give_ups r.r_indeterminate;
              let total = Bess_obs.Critpath.total_ns cp in
              Printf.printf "  %d transactions attributed, %.1f ms total\n"
                (Bess_obs.Critpath.txns cp)
                (float_of_int total /. 1e6);
              Printf.printf "  %-10s %14s %7s\n" "PHASE" "TOTAL-NS" "SHARE";
              List.iter
                (fun (name, ns) ->
                  if ns > 0 then
                    Printf.printf "  %-10s %14d %6.1f%%\n" name ns
                      (100.0 *. float_of_int ns /. float_of_int (Stdlib.max 1 total)))
                (Bess_obs.Critpath.blame_totals cp);
              let slow = Bess_obs.Critpath.slow cp in
              Printf.printf "slowest %d transactions:\n" (List.length slow);
              List.iteri
                (fun i (st : Bess_obs.Critpath.slow_txn) ->
                  let b = st.st_blame in
                  let root = st.st_root in
                  let outcome =
                    Option.value ~default:"?" (List.assoc_opt "outcome" root.attrs)
                  in
                  let parts =
                    List.concat
                      (List.mapi
                         (fun j p ->
                           let ns = b.b_phase_ns.(j) in
                           if ns > 0 then
                             [ Printf.sprintf "%s %dns" (Bess_obs.Critpath.phase_name p) ns ]
                           else [])
                         Bess_obs.Critpath.phases)
                  in
                  Printf.printf "  #%-2d span %-6d %8dns %-13s %d spans %d faults | %s\n"
                    (i + 1) root.id b.b_total_ns outcome
                    (List.length st.st_spans)
                    (List.length st.st_faults)
                    (String.concat ", " parts))
                slow
            end)
  in
  Cmd.v
    (Cmd.info "slow"
       ~doc:
         "Run a closed-loop workload with critical-path attribution installed and print the \
          slowest transactions' phase-by-phase blame breakdown")
    Term.(const run $ dir_arg $ workload_arg $ clients $ txns $ pages $ seed $ top_k
          $ json_arg $ no_handoff_arg)

(* ---- mrc / heat: the memory X-ray ---- *)

(* Shared runner: install the X-ray on the server's page cache AFTER
   seeding (so the sketches see the workload, not the loader), drive the
   named workload, and hand the sketches plus the workload-only hit/miss
   deltas to the reporter. *)
let run_xray dir ~workload ~clients ~txns ~pages ~seed ~rate_bits ~heat_window_us f =
  match List.assoc_opt workload load_workloads with
  | None ->
      Printf.eprintf "bad --workload %S (try uniform, zipf, hotspot, churn)\n" workload;
      exit 2
  | Some shape ->
      with_db dir (fun db ->
          let server = Bess.Db.server db in
          Bess.Server.set_detection server `Timeout;
          let page_ids = seed_working_set db pages in
          let cache = Bess.Store.cache (Bess.Server.store server) in
          let stats = Bess_cache.Cache.stats cache in
          let h0 = Bess_util.Stats.get stats "cache.hits" in
          let m0 = Bess_util.Stats.get stats "cache.misses" in
          let memx =
            Bess_cache.Memx.install ~rate_bits
              ~heat_window_ns:(Stdlib.max 1 heat_window_us * 1000)
              cache
          in
          let cfg =
            shape
              { Bess_sched.Driver.default with
                n_clients = clients;
                txns_per_client = txns;
                seed;
              }
          in
          Fun.protect
            ~finally:(fun () -> Bess_cache.Memx.uninstall memx)
            (fun () ->
              let r = Bess_sched.Driver.run server ~pages:page_ids cfg in
              let dh = Bess_util.Stats.get stats "cache.hits" - h0 in
              let dm = Bess_util.Stats.get stats "cache.misses" - m0 in
              let measured =
                if dh + dm = 0 then 0.0 else float_of_int dh /. float_of_int (dh + dm)
              in
              f ~cache ~memx ~result:r ~measured ~n_pages:(Array.length page_ids)))

let xray_workload_arg =
  Arg.(value & opt string "zipf"
       & info [ "workload" ] ~docv:"NAME"
           ~doc:"Named workload (same set as $(b,bessctl load))")

let xray_clients = Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N" ~doc:"Simulated clients")
let xray_txns = Arg.(value & opt int 50 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client")

let xray_pages =
  Arg.(value & opt int 1024 & info [ "pages" ] ~docv:"N" ~doc:"Working-set pages to seed")

let xray_seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed")

let xray_json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the sketch as deterministic JSON")

let mrc_cmd =
  let rate_bits =
    Arg.(value & opt int 4
         & info [ "rate-bits" ] ~docv:"B"
             ~doc:"SHARDS spatial sampling rate 2^-B (0 = track every access)")
  in
  let run dir workload clients txns pages seed rate_bits json =
    run_xray dir ~workload ~clients ~txns ~pages ~seed ~rate_bits ~heat_window_us:1000
      (fun ~cache ~memx ~result:r ~measured ~n_pages ->
        let mrc = Bess_cache.Memx.mrc memx in
        if json then print_string (Bess_cache.Memx.json_of_mrc memx ^ "\n")
        else begin
          Printf.printf "mrc: %S, %d clients x %d txns over %d pages, seed %d, rate 1/%d\n"
            workload clients txns n_pages seed (1 lsl rate_bits);
          Printf.printf "  commits %d  aborts %d  accesses %d  sampled %d  tracked keys %d\n"
            r.Bess_sched.Driver.r_commits r.r_aborts (Bess_obs.Mrc.n_total mrc)
            (Bess_obs.Mrc.n_sampled mrc) (Bess_obs.Mrc.tracked_keys mrc);
          Printf.printf "  %8s  %9s\n" "SIZE" "PREDICTED";
          let max_size =
            let rec up s = if s >= 2 * n_pages then s else up (2 * s) in
            up 1
          in
          List.iter
            (fun (size, rate) ->
              if size >= 8 then Printf.printf "  %8d  %8.1f%%\n" size (100.0 *. rate))
            (Bess_obs.Mrc.curve mrc ~max_size);
          let nslots = Bess_cache.Cache.nslots cache in
          let predicted = Bess_cache.Memx.predicted_hit_rate memx in
          Printf.printf
            "  configured cache %d slots: predicted %.1f%%, measured %.1f%% (delta %.1f points)\n"
            nslots (100.0 *. predicted) (100.0 *. measured)
            (100.0 *. abs_float (predicted -. measured))
        end)
  in
  Cmd.v
    (Cmd.info "mrc"
       ~doc:
         "Run a closed-loop workload with the SHARDS miss-ratio-curve sampler installed and \
          print the predicted hit rate at every power-of-two cache size against the measured \
          rate at the configured size")
    Term.(const run $ dir_arg $ xray_workload_arg $ xray_clients $ xray_txns $ xray_pages
          $ xray_seed $ rate_bits $ xray_json)

let heat_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Hottest pages to print")
  in
  let window_us =
    Arg.(value & opt int 1000
         & info [ "window-us" ] ~docv:"US"
             ~doc:"Decay window in simulated microseconds (frequencies halve once per window)")
  in
  let run dir workload clients txns pages seed top window_us json =
    run_xray dir ~workload ~clients ~txns ~pages ~seed ~rate_bits:4 ~heat_window_us:window_us
      (fun ~cache:_ ~memx ~result:r ~measured ~n_pages ->
        let heat = Bess_cache.Memx.heat memx in
        if json then print_string (Bess_cache.Memx.json_of_heat ~k:top memx ^ "\n")
        else begin
          Printf.printf "heat: %S, %d clients x %d txns over %d pages, seed %d\n" workload
            clients txns n_pages seed;
          Printf.printf
            "  commits %d  aborts %d  accesses %d  tracked pages %d  decays %d  hit %.1f%%\n"
            r.Bess_sched.Driver.r_commits r.r_aborts (Bess_obs.Heat.n_total heat)
            (Bess_obs.Heat.tracked_keys heat) (Bess_obs.Heat.n_decays heat)
            (100.0 *. measured);
          Printf.printf "  %-12s %8s %14s\n" "PAGE" "FREQ" "LAST-NS";
          List.iter
            (fun (page, freq, last_ns) ->
              Printf.printf "  %-12s %8d %14d\n"
                (Fmt.str "%a" Bess_cache.Page_id.pp page)
                freq last_ns)
            (Bess_cache.Memx.top_pages memx top)
        end)
  in
  Cmd.v
    (Cmd.info "heat"
       ~doc:
         "Run a closed-loop workload with the decayed page-heat sketch installed and print \
          the hottest pages")
    Term.(const run $ dir_arg $ xray_workload_arg $ xray_clients $ xray_txns $ xray_pages
          $ xray_seed $ top_arg $ window_us $ xray_json)

(* ---- flightrec ---- *)

let flightrec_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Flight-recorder dump (flightrec-*.json)")
  in
  let last =
    Arg.(value & opt int 40 & info [ "last" ] ~docv:"N" ~doc:"Timeline items to print")
  in
  let run file last =
    match Bess_obs.Flightrec.load file with
    | Error e ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        exit 2
    | Ok j ->
        let module J = Bess_obs.Json in
        Printf.printf "flight recorder dump %s\n" file;
        Printf.printf "  reason:    %s\n" (J.get_string ~default:"?" j "reason");
        Printf.printf "  wall time: %s\n" (J.get_string ~default:"?" j "wall_time");
        Printf.printf "  sim clock: %dns\n" (J.get_int j "sim_now_ns");
        let items = Bess_obs.Flightrec.replay j in
        let spans, faults =
          List.fold_left
            (fun (s, f) -> function
              | Bess_obs.Flightrec.Span_item _ -> (s + 1, f)
              | Bess_obs.Flightrec.Fault_item _ -> (s, f + 1))
            (0, 0) items
        in
        Printf.printf "  timeline:  %d spans, %d fault firings\n" spans faults;
        let n = List.length items in
        let tail =
          let rec drop i = function _ :: rest when i > 0 -> drop (i - 1) rest | l -> l in
          drop (Stdlib.max 0 (n - last)) items
        in
        if n > List.length tail then
          Printf.printf "  ... %d earlier items elided (raise --last)\n" (n - List.length tail);
        List.iter (fun item -> Fmt.pr "  %a@." Bess_obs.Flightrec.pp_item item) tail;
        (match J.member "series" j with
        | Some series ->
            let samples = J.get_list series "samples" in
            if samples <> [] then
              Printf.printf "  series: %d windows of %dns recorded\n" (List.length samples)
                (J.get_int series "window_ns")
        | None -> ())
  in
  Cmd.v
    (Cmd.info "flightrec"
       ~doc:"Replay a black-box flight-recorder dump: spans and fault firings interleaved")
    Term.(const run $ file_arg $ last)

(* ---- compact ---- *)

let compact_cmd =
  let run dir =
    with_db dir (fun db ->
        let s = Bess.Db.session db in
        let total = ref 0 in
        List.iter
          (fun seg_id ->
            let seg = Bess.Session.get_seg s ~db_id:(Bess.Db.db_id db) ~seg_id in
            total := !total + Bess.Reorg.compact_data_segment s seg)
          (Bess.Catalog.segment_ids (Bess.Db.catalog db));
        Printf.printf "compacted all segments: %d bytes reclaimed (0 references fixed)\n" !total)
  in
  Cmd.v (Cmd.info "compact" ~doc:"Compact every data segment on the fly") Term.(const run $ dir_arg)

(* ---- chaos ---- *)

let chaos_cmd =
  let module Fault = Bess_fault.Fault in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Master fault seed: the same seed replays the exact same fault schedule")
  in
  let profile_arg =
    Arg.(value & opt string "chaos"
         & info [ "fault-profile" ] ~docv:"PROFILE"
             ~doc:
               "Named fault profile ($(b,off), $(b,flaky-net), $(b,flaky-disk), $(b,chaos)) \
                or an explicit $(i,site=policy) list, e.g. \
                $(b,net.drop_reply=prob:0.05,wal.force.torn=every:7)")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent remote clients")
  in
  let rounds_arg =
    Arg.(value & opt int 8 & info [ "rounds" ] ~doc:"Commit rounds per client")
  in
  let flightrec_arg =
    Arg.(value & opt (some string) None
         & info [ "flightrec" ] ~docv:"DIR"
             ~doc:
               "Directory for black-box flight-recorder dumps (defaults to the database \
                directory); one is written on crash, recovery and chaos failure")
  in
  let run dir seed profile n_clients rounds flightrec_dir =
    match Fault.profile_of_string profile with
    | Error e ->
        Printf.eprintf "bad --fault-profile %S: %s\n" profile e;
        exit 2
    | Ok sites ->
        (* Black box: arm the flight recorder and collect spans so the
           dumps written on crash/recovery/failure carry a real
           timeline — and the critical-path sink, so each dump also
           carries the slowest transactions whole (aux_slow_txns). *)
        let frdir = Option.value ~default:dir flightrec_dir in
        Bess_obs.Flightrec.arm ~dir:frdir ();
        let coll = Bess_obs.Span.create () in
        Bess_obs.Span.install (Some coll);
        Bess_obs.Critpath.install (Some (Bess_obs.Critpath.create ~top_k:8 ()));
        Fun.protect ~finally:(fun () ->
            Bess_obs.Critpath.install None;
            Bess_obs.Span.install None;
            Bess_obs.Flightrec.disarm ())
        @@ fun () ->
        with_db dir (fun db ->
            let server = Bess.Db.server db in
            Bess.Server.set_group_policy server (Bess_wal.Group_commit.Group_n 2);
            (* A scratch segment so the torture never touches user data. *)
            let s = Bess.Db.session db in
            Bess.Session.begin_txn s;
            let seg = Bess.Session.create_segment s ~slotted_pages:1 ~data_pages:1 () in
            Bess.Session.commit s;
            Bess.Session.drop_all_cached s;
            let page =
              { Bess_cache.Page_id.area = seg.Bess.Session.data_disk.Bess_storage.Seg_addr.area;
                page = seg.Bess.Session.data_disk.Bess_storage.Seg_addr.first_page }
            in
            let net = Bess.Remote.network () in
            Bess.Remote.serve net server;
            let fetchers =
              Array.init n_clients (fun i ->
                  Bess.Remote.fetcher net ~client_id:(4000 + i) ~server_id:(Bess.Db.db_id db))
            in
            Fun.protect ~finally:Fault.reset @@ fun () ->
            Fault.seed seed;
            Fault.apply_profile sites;
            let acked = Array.make n_clients 0 in
            let maybes = Array.make n_clients [] in
            let acked_n = ref 0 and maybe_n = ref 0 in
            for round = 1 to rounds do
              for i = 0 to n_clients - 1 do
                let f = fetchers.(i) in
                let v = (seed * 1000) + (i * 100) + round in
                match f.Bess.Fetcher.f_begin () with
                | exception _ -> ()
                | txn -> (
                    match
                      let bytes =
                        f.Bess.Fetcher.f_fetch_page ~txn page ~mode:Bess_lock.Lock_mode.X
                      in
                      let after = Bytes.create 8 in
                      Bess_util.Codec.set_i64 after 0 v;
                      ({ Bess.Server.page; offset = i * 8;
                         before = Bytes.sub bytes (i * 8) 8; after }
                        : Bess.Server.update)
                    with
                    | exception _ -> ( try f.Bess.Fetcher.f_abort ~txn with _ -> ())
                    | u -> (
                        match f.Bess.Fetcher.f_commit_begin ~txn [ u ] with
                        | barrier -> (
                            match barrier () with
                            | () ->
                                incr acked_n;
                                acked.(i) <- v;
                                maybes.(i) <- []
                            | exception _ ->
                                incr maybe_n;
                                maybes.(i) <- v :: maybes.(i))
                        | exception _ ->
                            incr maybe_n;
                            maybes.(i) <- v :: maybes.(i);
                            (try f.Bess.Fetcher.f_abort ~txn with _ -> ())))
              done
            done;
            let leaked = Bess_lock.Lock_mgr.n_locks (Bess.Server.locks server) in
            Printf.printf "chaos: profile %S, seed %d, %d clients x %d rounds\n" profile seed
              n_clients rounds;
            Printf.printf "  acked %d, indeterminate %d, client retries %d, dup replays %d\n"
              !acked_n !maybe_n
              (Bess_util.Stats.get (Bess_net.Net.stats net) "net.client_retries")
              (Bess_util.Stats.get (Bess.Server.stats server) "server.dup_replays");
            Printf.printf "fault counters:\n";
            List.iter
              (fun (name, v) -> Printf.printf "  %-32s %d\n" name v)
              (Bess_util.Stats.to_list (Fault.stats ()));
            List.iter
              (fun (site, _) ->
                match Fault.schedule site with
                | [] -> ()
                | ords ->
                    Printf.printf "  schedule %-23s %s\n" site
                      (String.concat "+" (List.map string_of_int ords)))
              (Fault.configured ());
            (* Black-box the faulted phase now: [Fault.reset] clears the
               firing ring, and the recovery drill below runs fault-free. *)
            (match Bess_obs.Flightrec.dump ~reason:"chaos-workload" () with
            | Some path -> Printf.printf "flight recorder: %s\n" path
            | None -> ());
            (* Disarm, then the recovery drill: every acked value must
               survive the crash. *)
            Fault.reset ();
            Bess.Server.crash server;
            ignore (Bess.Server.recover server);
            let bytes = Bess.Server.read_page server page in
            let violations = ref 0 in
            for i = 0 to n_clients - 1 do
              let v = Bess_util.Codec.get_i64 bytes (i * 8) in
              if not (List.mem v (acked.(i) :: maybes.(i))) then begin
                incr violations;
                Printf.printf "  VIOLATION: slot %d recovered %d, last ack %d\n" i v acked.(i)
              end
            done;
            if !violations = 0 && leaked = 0 then begin
              Printf.printf "verdict: OK -- all acked commits survived recovery, no locks leaked\n";
              Printf.printf "flight recorder: crash/recovery dumps in %s (bessctl flightrec)\n"
                frdir
            end
            else begin
              (match Bess_obs.Flightrec.dump ~reason:"chaos-failure" () with
              | Some path -> Printf.printf "flight recorder: %s\n" path
              | None -> ());
              Printf.printf "verdict: FAILED (%d violations, %d leaked locks)\n" !violations
                leaked;
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay a deterministic fault profile against a multi-client commit workload, then \
          crash, recover and verify every acked commit survived")
    Term.(const run $ dir_arg $ seed_arg $ profile_arg $ clients_arg $ rounds_arg
          $ flightrec_arg)

let shard_cmd =
  let module Fault = Bess_fault.Fault in
  let module Shard = Bess_shard.Shard in
  let module Fleet = Bess_shard.Fleet in
  let module Twopc = Bess_shard.Twopc in
  let shards_arg =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"N" ~doc:"Shard servers in the in-process ring")
  in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Closed-loop clients in the fleet")
  in
  let txns_arg =
    Arg.(value & opt int 25 & info [ "txns" ] ~doc:"Transactions per client")
  in
  let cross_arg =
    Arg.(value & opt float 0.2
         & info [ "cross" ] ~docv:"FRAC"
             ~doc:"Probability a transaction spans two shards (two-phase commit)")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ]
             ~doc:"Workload seed: the same seed replays the same fleet byte-for-byte")
  in
  let profile_arg =
    Arg.(value & opt string "off"
         & info [ "fault-profile" ] ~docv:"PROFILE"
             ~doc:
               "Named fault profile ($(b,off), $(b,flaky-net), $(b,chaos-2pc), ...) or an \
                explicit $(i,site=policy) list; $(b,chaos-2pc) adds coordinator and \
                prepared-participant crashes to the message faults")
  in
  let run n_shards n_clients txns cross seed profile =
    match Fault.profile_of_string profile with
    | Error e ->
        Printf.eprintf "bad --fault-profile %S: %s\n" profile e;
        exit 2
    | Ok sites ->
        Fun.protect ~finally:Fault.reset @@ fun () ->
        let sh = Shard.create ~n:n_shards ~pages_per_shard:64 () in
        if sites <> [] then begin
          Fault.seed seed;
          Fault.apply_profile sites
        end;
        let cfg =
          { Fleet.default with
            n_clients;
            txns_per_client = txns;
            cross_fraction = cross;
            zipf_theta = 0.8;
            seed;
          }
        in
        let r = Fleet.run sh cfg in
        let schedules =
          List.filter_map
            (fun (site, _) ->
              match Fault.schedule site with [] -> None | ords -> Some (site, ords))
            (Fault.configured ())
        in
        (* Quiesce exactly like a restart would: disarm faults, re-drive
           unacked commit decisions, resolve the prepared stragglers by
           coordinator query (absent decision = presumed abort). *)
        Fault.reset ();
        let unacked = Twopc.redrive (Shard.coord sh) in
        let resolved, unresolved = Shard.resolve_in_doubt sh in
        Printf.printf "shard: %d shards, %d clients x %d txns, cross %.2f, seed %d, profile %S\n"
          n_shards n_clients txns cross seed profile;
        Printf.printf
          "  commits %d (cross-shard %d), aborts %d, give-ups %d, indeterminate %d\n"
          r.Fleet.f_commits r.Fleet.f_cross_commits r.Fleet.f_aborts r.Fleet.f_give_ups
          r.Fleet.f_indeterminate;
        Printf.printf "  throughput %.0f commits/s simulated, %d events, %.1f msgs/commit\n"
          (Fleet.throughput r) r.Fleet.f_events
          (if r.Fleet.f_commits = 0 then 0.0
           else
             float_of_int (Bess_net.Net.messages (Shard.net sh))
             /. float_of_int r.Fleet.f_commits);
        Printf.printf "  fingerprint %s\n" r.Fleet.f_fingerprint;
        Printf.printf "2pc counters:\n";
        List.iter
          (fun (name, v) -> Printf.printf "  %-28s %d\n" name v)
          (Bess_util.Stats.to_list (Twopc.stats (Shard.coord sh)));
        if schedules <> [] then begin
          Printf.printf "fault schedules:\n";
          List.iter
            (fun (site, ords) ->
              Printf.printf "  %-28s %s\n" site
                (String.concat "+" (List.map string_of_int ords)))
            schedules
        end;
        let leaked = Shard.locks_held sh in
        let in_doubt = Shard.in_doubt sh in
        Printf.printf "quiesce: %d redriven-unacked, %d resolved by query, %d unresolved, \
                       %d locks held, %d in doubt\n"
          unacked resolved unresolved leaked in_doubt;
        if leaked = 0 && in_doubt = 0 && unresolved = 0 then
          Printf.printf "verdict: OK -- ring quiesced, nothing locked or in doubt\n"
        else begin
          Printf.printf "verdict: FAILED (%d locks, %d in doubt, %d unresolved)\n" leaked
            in_doubt unresolved;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run a closed-loop cross-shard workload against N in-process shards committing \
          through presumed-abort two-phase commit, then print the 2pc counter plane")
    Term.(const run $ shards_arg $ clients_arg $ txns_arg $ cross_arg $ seed_arg
          $ profile_arg)

let () =
  let doc = "administer BeSS storage-manager databases" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "bessctl" ~doc)
          [ create_cmd; info_cmd; seed_cmd; scan_cmd; verify_cmd; compact_cmd; stats_cmd;
            trace_cmd; top_cmd; load_cmd; slow_cmd; mrc_cmd; heat_cmd; flightrec_cmd;
            chaos_cmd; shard_cmd ]))
