(* The BeSS clock for memory-mapped caches (section 4.2, copy-on-access).

   A traditional clock keeps a per-slot reference bit set on every access,
   but a mapped architecture never sees individual accesses. BeSS instead
   drives the clock off the *state of the virtual frame*:

     invalid     access-protected, no cache slot behind it
     protected   access-protected, backed by a slot
     accessible  readable/writable, backed by a slot

   The sweep skips invalid frames, converts accessible frames to protected
   (revoking access -- the analogue of clearing the reference bit), and
   picks the slot behind an already-protected frame as the victim: if the
   application had touched it since the last sweep, the access fault would
   have made it accessible again.

   The [protect]/[invalidate] callbacks perform the actual protection
   changes (mprotect in the paper, {!Vmem.set_prot} here); this module is
   pure bookkeeping so it can be tested standalone. *)

type state = Invalid | Protected | Accessible

let pp_state ppf s =
  Fmt.string ppf (match s with Invalid -> "invalid" | Protected -> "protected" | Accessible -> "accessible")

type t = {
  states : state array;
  slots : int array; (* backing slot per vframe; -1 = none *)
  mutable hand : int;
  protect : int -> unit;
  invalidate : int -> unit;
  stats : Bess_util.Stats.t;
}

let create ~n_vframes ~protect ~invalidate =
  let stats = Bess_util.Stats.create () in
  Bess_obs.Registry.register_stats "cache.state_clock" stats;
  {
    states = Array.make n_vframes Invalid;
    slots = Array.make n_vframes (-1);
    hand = 0;
    protect;
    invalidate;
    stats;
  }

let n_vframes t = Array.length t.states
let state t vframe = t.states.(vframe)
let slot_of t vframe = if t.slots.(vframe) < 0 then None else Some t.slots.(vframe)

(* A page was mapped into [vframe] backed by [slot]; the process can now
   touch it. *)
let map t ~vframe ~slot =
  t.states.(vframe) <- Accessible;
  t.slots.(vframe) <- slot

(* The process faulted on a protected frame: re-grant access. The caller
   performs the mprotect; we record the state transition the fault
   implies. *)
let access t ~vframe =
  match t.states.(vframe) with
  | Protected ->
      t.states.(vframe) <- Accessible;
      Bess_util.Stats.incr t.stats "state_clock.regrants"
  | Accessible -> ()
  | Invalid -> invalid_arg "State_clock.access: frame is invalid"

(* Explicit unmap (page discarded): frame becomes invalid. *)
let unmap t ~vframe =
  if t.states.(vframe) <> Invalid then t.invalidate vframe;
  t.states.(vframe) <- Invalid;
  t.slots.(vframe) <- -1

(* Sweep for a victim. Two full revolutions guarantee a decision: the
   first converts accessible frames to protected, the second finds one
   still protected (untouched since). [can_evict] lets the owner veto
   pinned slots. *)
let sweep_victim t ~can_evict =
  let n = Array.length t.states in
  let rec go steps =
    if steps > 2 * n then None
    else begin
      let vframe = t.hand in
      t.hand <- (t.hand + 1) mod n;
      match t.states.(vframe) with
      | Invalid -> go (steps + 1)
      | Accessible ->
          t.states.(vframe) <- Protected;
          t.protect vframe;
          Bess_util.Stats.incr t.stats "state_clock.protects";
          go (steps + 1)
      | Protected ->
          let slot = t.slots.(vframe) in
          if can_evict slot then begin
            t.states.(vframe) <- Invalid;
            t.slots.(vframe) <- -1;
            t.invalidate vframe;
            Bess_util.Stats.incr t.stats "state_clock.victims";
            Some (vframe, slot)
          end
          else go (steps + 1)
    end
  in
  go 0

let stats t = t.stats
