lib/cache/two_level.mli: Bess_util State_clock
