(* bess_largeobj: byte-range operations against a reference model, tree
   invariants, codec hooks, descriptor persistence. *)

module Lob = Bess_largeobj.Lob
module Area = Bess_storage.Area
module Prng = Bess_util.Prng

let fresh_area =
  let n = ref 0 in
  fun () ->
    incr n;
    Area.create ~page_size:512 ~extent_order:6 ~id:!n `Memory

let bytes_of_string = Bytes.of_string

let test_append_read () =
  let lob = Lob.create (fresh_area ()) in
  Lob.append lob (bytes_of_string "hello ");
  Lob.append lob (bytes_of_string "world");
  Alcotest.(check int) "size" 11 (Lob.size lob);
  Alcotest.(check string) "content" "hello world" (Bytes.to_string (Lob.to_bytes lob));
  Alcotest.(check string) "range read" "lo wo" (Bytes.to_string (Lob.read lob ~pos:3 ~len:5));
  Lob.check lob

let test_insert_middle () =
  let lob = Lob.create (fresh_area ()) in
  Lob.append lob (bytes_of_string "aaccc");
  Lob.insert lob ~pos:2 (bytes_of_string "BB");
  Alcotest.(check string) "insert" "aaBBccc" (Bytes.to_string (Lob.to_bytes lob));
  Lob.check lob

let test_delete_and_truncate () =
  let lob = Lob.create (fresh_area ()) in
  Lob.append lob (bytes_of_string "0123456789");
  Lob.delete lob ~pos:2 ~len:5;
  Alcotest.(check string) "delete" "01789" (Bytes.to_string (Lob.to_bytes lob));
  Lob.truncate lob 2;
  Alcotest.(check string) "truncate" "01" (Bytes.to_string (Lob.to_bytes lob));
  Lob.truncate lob 0;
  Alcotest.(check int) "empty" 0 (Lob.size lob);
  Lob.check lob

let test_write_overwrite_and_extend () =
  let lob = Lob.create (fresh_area ()) in
  Lob.append lob (bytes_of_string "xxxxxxxx");
  Lob.write lob ~pos:2 (bytes_of_string "YY");
  Alcotest.(check string) "overwrite" "xxYYxxxx" (Bytes.to_string (Lob.to_bytes lob));
  Lob.write lob ~pos:6 (bytes_of_string "LONGTAIL");
  Alcotest.(check string) "extend" "xxYYxxLONGTAIL" (Bytes.to_string (Lob.to_bytes lob));
  Lob.check lob

let test_multi_leaf_growth () =
  let area = fresh_area () in
  let lob = Lob.create ~max_leaf:1024 area in
  let prng = Prng.create 5 in
  let total = 50_000 in
  let data = Prng.bytes prng total in
  (* Append in 1000-byte steps: "very large objects are created in steps
     by successive appends". *)
  let pos = ref 0 in
  while !pos < total do
    let n = Stdlib.min 1000 (total - !pos) in
    Lob.append lob (Bytes.sub data !pos n);
    pos := !pos + n
  done;
  Alcotest.(check int) "size" total (Lob.size lob);
  Alcotest.(check bool) "tree grew" true (Lob.depth lob > 1);
  Alcotest.(check bytes) "content" data (Lob.to_bytes lob);
  (* Random range reads. *)
  for _ = 1 to 50 do
    let p = Prng.int prng (total - 100) in
    let l = 1 + Prng.int prng 99 in
    Alcotest.(check bytes) "range" (Bytes.sub data p l) (Lob.read lob ~pos:p ~len:l)
  done;
  Lob.check lob

let test_segments_freed_on_shrink () =
  let area = fresh_area () in
  let lob = Lob.create ~max_leaf:1024 area in
  Lob.append lob (Prng.bytes (Prng.create 1) 20_000);
  let free_before = Area.free_pages area in
  Lob.truncate lob 100;
  Lob.check lob;
  Alcotest.(check bool) "space reclaimed" true (Area.free_pages area > free_before);
  Lob.destroy lob;
  Alcotest.(check int) "all reclaimed" (Area.capacity_pages area) (Area.free_pages area)

let test_descriptor_roundtrip () =
  let area = fresh_area () in
  let lob = Lob.create ~max_leaf:1024 area in
  let data = Prng.bytes (Prng.create 2) 10_000 in
  Lob.append lob data;
  let blob = Lob.encode lob in
  let lob2 = Lob.decode ~max_leaf:1024 area blob in
  Alcotest.(check int) "size preserved" (Lob.size lob) (Lob.size lob2);
  Alcotest.(check bytes) "content preserved" data (Lob.to_bytes lob2);
  Lob.check lob2

let test_compression_codec () =
  let area = fresh_area () in
  let lob = Lob.create ~max_leaf:2048 area in
  (* A toy run-length codec: enough to verify the hook plumbing changes
     physical size while logical content is preserved. *)
  let compress b =
    let buf = Buffer.create 64 in
    let n = Bytes.length b in
    let i = ref 0 in
    while !i < n do
      let c = Bytes.get b !i in
      let run = ref 0 in
      while !i + !run < n && !run < 255 && Bytes.get b (!i + !run) = c do
        incr run
      done;
      Buffer.add_char buf (Char.chr !run);
      Buffer.add_char buf c;
      i := !i + !run
    done;
    Buffer.to_bytes buf
  in
  let decompress b =
    let buf = Buffer.create 64 in
    let i = ref 0 in
    while !i < Bytes.length b do
      let run = Char.code (Bytes.get b !i) in
      let c = Bytes.get b (!i + 1) in
      for _ = 1 to run do
        Buffer.add_char buf c
      done;
      i := !i + 2
    done;
    Buffer.to_bytes buf
  in
  Lob.set_codec lob (Some { Lob.compress; decompress });
  let data = Bytes.make 1500 'A' in
  Lob.append lob data;
  Alcotest.(check bytes) "compressed roundtrip" data (Lob.to_bytes lob);
  (* Highly compressible data should occupy almost nothing. *)
  let pages = Bess_util.Stats.get (Lob.stats lob) "lob.pages_written" in
  Alcotest.(check bool) "few pages written" true (pages <= 2);
  Lob.check lob

(* Model-based property test: a random op sequence applied both to the
   Lob and to a plain Bytes reference must agree. *)
let lob_op =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun p s -> `Insert (p, s)) (int_bound 1000) small_string);
        (3, map (fun s -> `Append s) small_string);
        (2, map2 (fun p l -> `Delete (p, l)) (int_bound 1000) (int_bound 200));
        (2, map2 (fun p s -> `Write (p, s)) (int_bound 1000) small_string);
        (1, map (fun n -> `Truncate n) (int_bound 1000));
      ])

let apply_model model op =
  let n = Bytes.length model in
  match op with
  | `Insert (p, s) ->
      let p = p mod (n + 1) in
      Bytes.concat Bytes.empty
        [ Bytes.sub model 0 p; Bytes.of_string s; Bytes.sub model p (n - p) ]
  | `Append s -> Bytes.cat model (Bytes.of_string s)
  | `Delete (p, l) ->
      if n = 0 then model
      else
        let p = p mod n in
        let l = Stdlib.min l (n - p) in
        Bytes.cat (Bytes.sub model 0 p) (Bytes.sub model (p + l) (n - p - l))
  | `Write (p, s) ->
      let p = p mod (n + 1) in
      let del = Stdlib.min (String.length s) (n - p) in
      Bytes.concat Bytes.empty
        [ Bytes.sub model 0 p; Bytes.of_string s; Bytes.sub model (p + del) (n - p - del) ]
  | `Truncate k ->
      let k = if n = 0 then 0 else k mod (n + 1) in
      Bytes.sub model 0 k

let apply_lob lob op =
  let n = Lob.size lob in
  match op with
  | `Insert (p, s) -> Lob.insert lob ~pos:(p mod (n + 1)) (Bytes.of_string s)
  | `Append s -> Lob.append lob (Bytes.of_string s)
  | `Delete (p, l) ->
      if n > 0 then
        let p = p mod n in
        Lob.delete lob ~pos:p ~len:(Stdlib.min l (n - p))
  | `Write (p, s) -> Lob.write lob ~pos:(p mod (n + 1)) (Bytes.of_string s)
  | `Truncate k -> Lob.truncate lob (if n = 0 then 0 else k mod (n + 1))

let prop_model_equivalence =
  QCheck.Test.make ~name:"lob agrees with bytes model" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_bound 25) lob_op))
    (fun ops ->
      let lob = Lob.create ~max_leaf:1024 (fresh_area ()) in
      let model = ref Bytes.empty in
      List.iter
        (fun op ->
          apply_lob lob op;
          model := apply_model !model op)
        ops;
      Lob.check lob;
      Bytes.equal (Lob.to_bytes lob) !model)

let suite =
  [
    Alcotest.test_case "append_read" `Quick test_append_read;
    Alcotest.test_case "insert_middle" `Quick test_insert_middle;
    Alcotest.test_case "delete_truncate" `Quick test_delete_and_truncate;
    Alcotest.test_case "write_overwrite_extend" `Quick test_write_overwrite_and_extend;
    Alcotest.test_case "multi_leaf_growth" `Quick test_multi_leaf_growth;
    Alcotest.test_case "segments_freed" `Quick test_segments_freed_on_shrink;
    Alcotest.test_case "descriptor_roundtrip" `Quick test_descriptor_roundtrip;
    Alcotest.test_case "compression_codec" `Quick test_compression_codec;
    QCheck_alcotest.to_alcotest prop_model_equivalence;
  ]
