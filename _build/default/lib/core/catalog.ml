(* Per-database catalog: segment table, file table, root directory, type
   registry.

   The segment table maps a segment id to the disk address of its
   *slotted* segment only -- slotted segments are never relocated
   (section 2.1), so this table is write-once per segment. Everything
   movable (the data segment, the overflow segment) is addressed from the
   slotted segment header itself, which is why reorganisation never
   touches the catalog or any inter-object reference.

   The root directory implements named objects (section 2.5): "BeSS
   maintains a directory which is implemented as a pair of hash tables",
   one per direction so removal of a root object also removes its name
   (referential integrity). *)

type file_info = {
  file_id : int;
  file_name : string;
  mutable area_id : int option; (* Some a: ordinary file bound to one area; None: multifile *)
  mutable seg_ids : int list; (* segments of the file, in creation order *)
}

type t = {
  db_id : int;
  host : int;
  segments : (int, Bess_storage.Seg_addr.t) Hashtbl.t; (* seg_id -> slotted segment *)
  files : (int, file_info) Hashtbl.t;
  files_by_name : (string, int) Hashtbl.t;
  roots_by_name : (string, Oid.t) Hashtbl.t;
  roots_by_oid : string Oid.Tbl.t;
  types : Type_desc.registry;
  mutable next_seg_id : int;
  mutable next_file_id : int;
}

let create ~db_id ~host =
  {
    db_id;
    host;
    segments = Hashtbl.create 64;
    files = Hashtbl.create 16;
    files_by_name = Hashtbl.create 16;
    roots_by_name = Hashtbl.create 16;
    roots_by_oid = Oid.Tbl.create 16;
    types = Type_desc.registry_create ();
    next_seg_id = 1;
    next_file_id = 1;
  }

let db_id t = t.db_id
let host t = t.host
let types t = t.types

(* ---- Segments ---- *)

let fresh_seg_id t =
  let id = t.next_seg_id in
  t.next_seg_id <- id + 1;
  id

let add_segment t ~seg_id addr =
  Hashtbl.replace t.segments seg_id addr;
  (* Explicitly-numbered segments must not collide with future ids. *)
  if seg_id >= t.next_seg_id then t.next_seg_id <- seg_id + 1

let find_segment t seg_id =
  match Hashtbl.find_opt t.segments seg_id with
  | Some addr -> addr
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown segment %d" seg_id)

let segment_exists t seg_id = Hashtbl.mem t.segments seg_id
let remove_segment t seg_id = Hashtbl.remove t.segments seg_id
let n_segments t = Hashtbl.length t.segments

let segment_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.segments [] |> List.sort compare

(* ---- Files ---- *)

let create_file t ~name ~area_id =
  if Hashtbl.mem t.files_by_name name then invalid_arg "Catalog.create_file: duplicate name";
  let file_id = t.next_file_id in
  t.next_file_id <- file_id + 1;
  let info = { file_id; file_name = name; area_id; seg_ids = [] } in
  Hashtbl.replace t.files file_id info;
  Hashtbl.replace t.files_by_name name file_id;
  info

let find_file t file_id =
  match Hashtbl.find_opt t.files file_id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown file %d" file_id)

let find_file_by_name t name =
  Option.map (find_file t) (Hashtbl.find_opt t.files_by_name name)

let file_add_segment _t file seg_id = file.seg_ids <- file.seg_ids @ [ seg_id ]

(* Rebind a file to a different area (movement of entire files between
   storage areas, section 2.1). Segment payloads move separately. *)
let file_set_area file area_id = file.area_id <- area_id

let files t = Hashtbl.fold (fun _ f acc -> f :: acc) t.files [] |> List.sort compare

(* ---- Root directory ---- *)

let set_root t ~name oid =
  (match Hashtbl.find_opt t.roots_by_name name with
  | Some old -> Oid.Tbl.remove t.roots_by_oid old
  | None -> ());
  Hashtbl.replace t.roots_by_name name oid;
  Oid.Tbl.replace t.roots_by_oid oid name

let find_root t name = Hashtbl.find_opt t.roots_by_name name
let root_name t oid = Oid.Tbl.find_opt t.roots_by_oid oid

let remove_root_by_name t name =
  match Hashtbl.find_opt t.roots_by_name name with
  | None -> ()
  | Some oid ->
      Hashtbl.remove t.roots_by_name name;
      Oid.Tbl.remove t.roots_by_oid oid

(* Referential integrity: deleting an object also unnames it. *)
let remove_root_by_oid t oid =
  match Oid.Tbl.find_opt t.roots_by_oid oid with
  | None -> ()
  | Some name ->
      Hashtbl.remove t.roots_by_name name;
      Oid.Tbl.remove t.roots_by_oid oid

let roots t =
  Hashtbl.fold (fun name oid acc -> (name, oid) :: acc) t.roots_by_name []
  |> List.sort compare

(* ---- Serialization ---- *)

let encode t =
  let buf = Buffer.create 1024 in
  let u32 v =
    let b = Bytes.create 4 in
    Bess_util.Codec.set_u32 b 0 v;
    Buffer.add_bytes buf b
  in
  let str s =
    let b = Bytes.create (Bess_util.Codec.string_size s) in
    ignore (Bess_util.Codec.set_string b 0 s);
    Buffer.add_bytes buf b
  in
  u32 t.db_id;
  u32 t.host;
  u32 t.next_seg_id;
  u32 t.next_file_id;
  (* segments *)
  u32 (Hashtbl.length t.segments);
  List.iter
    (fun id ->
      u32 id;
      let b = Bytes.create Bess_storage.Seg_addr.encoded_size in
      Bess_storage.Seg_addr.encode b 0 (find_segment t id);
      Buffer.add_bytes buf b)
    (segment_ids t);
  (* files *)
  let fs = files t in
  u32 (List.length fs);
  List.iter
    (fun f ->
      u32 f.file_id;
      str f.file_name;
      u32 (match f.area_id with Some a -> a + 1 | None -> 0);
      u32 (List.length f.seg_ids);
      List.iter u32 f.seg_ids)
    fs;
  (* roots *)
  let rs = roots t in
  u32 (List.length rs);
  List.iter
    (fun (name, oid) ->
      str name;
      let b = Bytes.create Oid.encoded_size in
      Oid.encode b 0 oid;
      Buffer.add_bytes buf b)
    rs;
  (* types *)
  let ts = Type_desc.registry_to_list t.types in
  u32 (List.length ts);
  List.iter
    (fun td ->
      let b = Bytes.create (Type_desc.encoded_size td) in
      ignore (Type_desc.encode b 0 td);
      Buffer.add_bytes buf b)
    ts;
  Buffer.to_bytes buf

let decode b =
  let pos = ref 0 in
  let u32 () =
    let v = Bess_util.Codec.get_u32 b !pos in
    pos := !pos + 4;
    v
  in
  let str () =
    let s, p = Bess_util.Codec.get_string b !pos in
    pos := p;
    s
  in
  let db_id = u32 () in
  let host = u32 () in
  let next_seg_id = u32 () in
  let next_file_id = u32 () in
  let t = create ~db_id ~host in
  t.next_seg_id <- next_seg_id;
  t.next_file_id <- next_file_id;
  let n_segs = u32 () in
  for _ = 1 to n_segs do
    let id = u32 () in
    let addr = Bess_storage.Seg_addr.decode b !pos in
    pos := !pos + Bess_storage.Seg_addr.encoded_size;
    add_segment t ~seg_id:id addr
  done;
  let n_files = u32 () in
  for _ = 1 to n_files do
    let file_id = u32 () in
    let file_name = str () in
    let area = u32 () in
    let area_id = if area = 0 then None else Some (area - 1) in
    let n = u32 () in
    let seg_ids = List.init n (fun _ -> u32 ()) in
    let info = { file_id; file_name; area_id; seg_ids } in
    Hashtbl.replace t.files file_id info;
    Hashtbl.replace t.files_by_name file_name file_id
  done;
  let n_roots = u32 () in
  for _ = 1 to n_roots do
    let name = str () in
    let oid = Oid.decode b !pos in
    pos := !pos + Oid.encoded_size;
    set_root t ~name oid
  done;
  let n_types = u32 () in
  for _ = 1 to n_types do
    let td, p = Type_desc.decode b !pos in
    pos := p;
    Type_desc.install t.types td
  done;
  t
