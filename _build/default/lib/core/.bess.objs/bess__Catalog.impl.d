lib/core/catalog.ml: Bess_storage Bess_util Buffer Bytes Hashtbl List Oid Option Printf Type_desc
