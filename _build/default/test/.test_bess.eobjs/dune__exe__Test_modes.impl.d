test/test_modes.ml: Alcotest Array Bess Bess_cache Bess_storage Bess_util Bess_vmem Bytes
