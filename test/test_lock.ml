(* bess_lock: mode algebra, 2PL grant/block, deadlock detection (graph
   and timeout), callback registry. *)

module Lock_mode = Bess_lock.Lock_mode
module Lock_mgr = Bess_lock.Lock_mgr
module Callback = Bess_lock.Callback

let r1 = Lock_mgr.page_resource ~area:1 ~page:1
let r2 = Lock_mgr.page_resource ~area:1 ~page:2
let obj1 = Lock_mgr.object_resource ~db:1 ~slot:1

let test_mode_algebra () =
  let open Lock_mode in
  (* Compatibility matrix spot checks. *)
  Alcotest.(check bool) "S/S" true (compatible S S);
  Alcotest.(check bool) "S/X" false (compatible S X);
  Alcotest.(check bool) "IS/IX" true (compatible IS IX);
  Alcotest.(check bool) "IX/IX" true (compatible IX IX);
  Alcotest.(check bool) "SIX/IS" true (compatible SIX IS);
  Alcotest.(check bool) "SIX/IX" false (compatible SIX IX);
  Alcotest.(check bool) "X/anything" false (List.exists (compatible X) all);
  (* Symmetry. *)
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.(check bool) "symmetric" (compatible a b) (compatible b a))
        all)
    all;
  (* Supremum. *)
  Alcotest.(check bool) "S+IX=SIX" true (sup S IX = SIX);
  Alcotest.(check bool) "covers" true (covers X S && covers SIX IS && not (covers S X))

let test_grant_block_release () =
  let m = Lock_mgr.create () in
  Alcotest.(check bool) "t1 gets S" true (Lock_mgr.acquire m ~txn:1 r1 S = `Granted);
  Alcotest.(check bool) "t2 shares S" true (Lock_mgr.acquire m ~txn:2 r1 S = `Granted);
  Alcotest.(check bool) "t3 X blocks" true (Lock_mgr.acquire m ~txn:3 r1 X = `Blocked);
  let woken = Lock_mgr.release_all m ~txn:1 in
  ignore woken;
  Alcotest.(check bool) "still blocked (t2 holds)" true (Lock_mgr.acquire m ~txn:3 r1 X = `Blocked);
  ignore (Lock_mgr.release_all m ~txn:2);
  Alcotest.(check bool) "granted after both release" true (Lock_mgr.acquire m ~txn:3 r1 X = `Granted)

let test_upgrade () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.S);
  Alcotest.(check bool) "upgrade S->X when alone" true
    (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.X = `Granted);
  Alcotest.(check bool) "holds X" true (Lock_mgr.holds m ~txn:1 r1 Lock_mode.X)

let test_fifo_no_starvation () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.S);
  (* A writer queues... *)
  Alcotest.(check bool) "writer blocks" true (Lock_mgr.acquire m ~txn:2 r1 Lock_mode.X = `Blocked);
  (* ...and a later reader must not jump it. *)
  Alcotest.(check bool) "later reader waits behind writer" true
    (Lock_mgr.acquire m ~txn:3 r1 Lock_mode.S = `Blocked)

let test_deadlock_graph () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.X);
  ignore (Lock_mgr.acquire m ~txn:2 r2 Lock_mode.X);
  Alcotest.(check bool) "t1 waits for r2" true (Lock_mgr.acquire m ~txn:1 r2 Lock_mode.X = `Blocked);
  (* t2 -> r1 completes the cycle. *)
  Alcotest.(check bool) "cycle detected" true (Lock_mgr.acquire m ~txn:2 r1 Lock_mode.X = `Deadlock)

let test_deadlock_timeout () =
  let m = Lock_mgr.create ~timeout:5 () in
  ignore (Lock_mgr.acquire ~detect:`Timeout m ~txn:1 r1 Lock_mode.X);
  Alcotest.(check bool) "blocks initially" true
    (Lock_mgr.acquire ~detect:`Timeout m ~txn:2 r1 Lock_mode.X = `Blocked);
  (* Let the logical clock run past the timeout. *)
  for _ = 1 to 10 do
    Lock_mgr.tick m
  done;
  (* A timeout is reported as `Timeout (suspicion), distinct from the
     proven-cycle `Deadlock verdict, and counted separately. *)
  Alcotest.(check bool) "times out" true
    (Lock_mgr.acquire ~detect:`Timeout m ~txn:2 r1 Lock_mode.X = `Timeout);
  Alcotest.(check int) "counted as timeout, not deadlock" 1
    (Bess_util.Stats.get (Lock_mgr.stats m) "lock.timeouts");
  Alcotest.(check int) "no deadlock counted" 0
    (Bess_util.Stats.get (Lock_mgr.stats m) "lock.deadlocks")

let test_object_and_page_namespaces_disjoint () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.X);
  Alcotest.(check bool) "object lock independent" true
    (Lock_mgr.acquire m ~txn:2 obj1 Lock_mode.X = `Granted)

let test_regrant_is_cheap () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.X);
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.X);
  ignore (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.S) (* covered by X *);
  Alcotest.(check int) "regrants counted" 2
    (Bess_util.Stats.get (Lock_mgr.stats m) "lock.regrants")

(* Regression: a transaction that aborts while queued on a resource it
   never acquired (a "ghost waiter") is purged by release_all -- but the
   transactions queued *behind* it must land on the wake list. t1 holds S;
   t2's X request queues; t3's S request queues behind the writer (FIFO).
   When t2 aborts, t3 is now head of the queue and compatible with t1's S:
   without a retry signal it stalls forever, because t2 held nothing on r1
   and so no future release on r1 is coming. *)
let test_ghost_waiter_followers_woken () =
  let m = Lock_mgr.create () in
  Alcotest.(check bool) "t1 holds S" true (Lock_mgr.acquire m ~txn:1 r1 Lock_mode.S = `Granted);
  Alcotest.(check bool) "t2 X queues" true (Lock_mgr.acquire m ~txn:2 r1 Lock_mode.X = `Blocked);
  Alcotest.(check bool) "t3 S queues behind writer" true
    (Lock_mgr.acquire m ~txn:3 r1 Lock_mode.S = `Blocked);
  (* t2 aborts holding nothing: only the ghost-purge pass touches r1. *)
  let woken = Lock_mgr.release_all m ~txn:2 in
  Alcotest.(check bool) "t3 is on the wake list" true (List.mem 3 woken);
  Alcotest.(check bool) "t3's retry is granted" true
    (Lock_mgr.acquire m ~txn:3 r1 Lock_mode.S = `Granted)

let test_callback_registry () =
  let cb = Callback.create () in
  (* Two clients cache the page in S. *)
  Alcotest.(check bool) "c1 S" true (Callback.request cb ~client:1 r1 Lock_mode.S = `Granted);
  Alcotest.(check bool) "c2 S" true (Callback.request cb ~client:2 r1 Lock_mode.S = `Granted);
  (* c3 wants X: both must be called back. *)
  (match Callback.request cb ~client:3 r1 Lock_mode.X with
  | `Callback_needed clients ->
      Alcotest.(check (list int)) "both called back" [ 1; 2 ] (List.sort compare clients)
  | `Granted -> Alcotest.fail "should need callbacks");
  Callback.dropped cb ~client:1 r1;
  Callback.dropped cb ~client:2 r1;
  Alcotest.(check bool) "granted after drops" true
    (Callback.request cb ~client:3 r1 Lock_mode.X = `Granted);
  (* Own cached copy never conflicts with oneself. *)
  Alcotest.(check bool) "self upgrade fine" true
    (Callback.request cb ~client:3 r1 Lock_mode.X = `Granted)

let test_callback_downgrade_and_forget () =
  let cb = Callback.create () in
  ignore (Callback.request cb ~client:1 r1 Bess_lock.Lock_mode.X);
  Callback.downgraded cb ~client:1 r1 Bess_lock.Lock_mode.S;
  Alcotest.(check bool) "S sharers fine after downgrade" true
    (Callback.request cb ~client:2 r1 Bess_lock.Lock_mode.S = `Granted);
  Callback.forget_client cb ~client:1;
  Alcotest.(check bool) "X after forget" true
    (Callback.request cb ~client:2 r1 Bess_lock.Lock_mode.X = `Granted)

let prop_sup_is_lub =
  QCheck.Test.make ~name:"sup is an upper bound" ~count:100
    QCheck.(pair (oneofl Lock_mode.all) (oneofl Lock_mode.all))
    (fun (a, b) ->
      let s = Lock_mode.sup a b in
      Lock_mode.covers s a && Lock_mode.covers s b)

let prop_release_unblocks =
  QCheck.Test.make ~name:"after release_all the resource is grantable" ~count:100
    QCheck.(oneofl Lock_mode.all)
    (fun mode ->
      let m = Lock_mgr.create () in
      ignore (Lock_mgr.acquire m ~txn:1 r1 mode);
      ignore (Lock_mgr.release_all m ~txn:1);
      Lock_mgr.acquire m ~txn:2 r1 Lock_mode.X = `Granted)

(* Random schedules: after any sequence of acquire/release_all, no two
   transactions hold incompatible modes on the same resource, and every
   waiter conflicts with someone. *)
let prop_no_incompatible_grants =
  QCheck.Test.make ~name:"2PL safety under random schedules" ~count:150
    QCheck.(small_list (quad (int_bound 4) (int_bound 3) (oneofl Lock_mode.all) bool))
    (fun ops ->
      let m = Lock_mgr.create () in
      let resources = [| r1; r2; obj1; Lock_mgr.page_resource ~area:9 ~page:9 |] in
      List.iter
        (fun (txn, r, mode, release) ->
          let txn = txn + 1 in
          if release then ignore (Lock_mgr.release_all m ~txn)
          else ignore (Lock_mgr.acquire m ~txn resources.(r) mode))
        ops;
      (* safety: granted modes pairwise compatible per resource *)
      Array.for_all
        (fun r ->
          let holders =
            List.filter_map
              (fun txn -> Option.map (fun mode -> (txn, mode)) (Lock_mgr.held_mode m ~txn r))
              [ 1; 2; 3; 4; 5 ]
          in
          List.for_all
            (fun (t1, m1) ->
              List.for_all
                (fun (t2, m2) -> t1 = t2 || Lock_mode.compatible m1 m2)
                holders)
            holders)
        resources)

let prop_release_all_is_total =
  QCheck.Test.make ~name:"release_all leaves nothing held or queued" ~count:100
    QCheck.(small_list (pair (int_bound 2) (oneofl Lock_mode.all)))
    (fun ops ->
      let m = Lock_mgr.create () in
      let resources = [| r1; r2; obj1 |] in
      List.iteri
        (fun i (r, mode) -> ignore (Lock_mgr.acquire m ~txn:((i mod 3) + 1) resources.(r) mode))
        ops;
      ignore (Lock_mgr.release_all m ~txn:1);
      ignore (Lock_mgr.release_all m ~txn:2);
      ignore (Lock_mgr.release_all m ~txn:3);
      Lock_mgr.n_locks m = 0
      && Lock_mgr.held_resources m ~txn:1 = []
      && Lock_mgr.held_resources m ~txn:2 = []
      && Lock_mgr.held_resources m ~txn:3 = [])

(* Regression for the release_all hot path: releasing must touch only the
   entries the transaction holds or waits on, never the whole table. The
   scenario builds an n+1-entry table (every transaction holds a private
   page and queues on one shared hot page) and then releases everyone;
   [lock.release_scan_entries] counts entries visited, which must grow
   linearly in n — the old whole-table ghost-waiter purge made this
   quadratic (~n^2/2 entries scanned across the release phase). *)
let test_release_scan_subquadratic () =
  let scan_entries n =
    let m = Lock_mgr.create () in
    let shared = Lock_mgr.page_resource ~area:9 ~page:0 in
    for i = 1 to n do
      (match Lock_mgr.acquire m ~txn:i (Lock_mgr.page_resource ~area:9 ~page:i) Lock_mode.X with
      | `Granted -> ()
      | _ -> Alcotest.fail "private page should be granted");
      ignore (Lock_mgr.acquire m ~txn:i shared Lock_mode.X)
    done;
    for i = 1 to n do
      ignore (Lock_mgr.release_all m ~txn:i)
    done;
    Alcotest.(check int) "no leaked entries" 0 (Lock_mgr.n_locks m);
    Bess_util.Stats.get (Lock_mgr.stats m) "lock.release_scan_entries"
  in
  let small = scan_entries 200 in
  let large = scan_entries 2000 in
  Alcotest.(check bool) "scan entries grow" true (large > small);
  (* Linear growth gives large = 10 * small; the old whole-table scan
     gave ~100x. Allow slack up to 3x linear. *)
  Alcotest.(check bool)
    (Printf.sprintf "sub-quadratic release scans (small=%d large=%d)" small large)
    true
    (large <= 30 * small)

let suite =
  [
    Alcotest.test_case "mode_algebra" `Quick test_mode_algebra;
    Alcotest.test_case "release_scan_subquadratic" `Quick test_release_scan_subquadratic;
    Alcotest.test_case "grant_block_release" `Quick test_grant_block_release;
    Alcotest.test_case "upgrade" `Quick test_upgrade;
    Alcotest.test_case "fifo_no_starvation" `Quick test_fifo_no_starvation;
    Alcotest.test_case "deadlock_graph" `Quick test_deadlock_graph;
    Alcotest.test_case "deadlock_timeout" `Quick test_deadlock_timeout;
    Alcotest.test_case "namespaces_disjoint" `Quick test_object_and_page_namespaces_disjoint;
    Alcotest.test_case "regrant_cheap" `Quick test_regrant_is_cheap;
    Alcotest.test_case "ghost_waiter_followers_woken" `Quick test_ghost_waiter_followers_woken;
    Alcotest.test_case "callback_registry" `Quick test_callback_registry;
    Alcotest.test_case "callback_downgrade_forget" `Quick test_callback_downgrade_and_forget;
    QCheck_alcotest.to_alcotest prop_sup_is_lub;
    QCheck_alcotest.to_alcotest prop_release_unblocks;
    QCheck_alcotest.to_alcotest prop_no_incompatible_grants;
    QCheck_alcotest.to_alcotest prop_release_all_is_total;
  ]
