(** The black-box flight recorder.

    When armed, {!dump} bundles the last N spans and trace events, every
    recorded fault firing, the current registry snapshot (counters +
    gauges) and the installed {!Series} ring into one JSON artifact. The
    top-level object is a valid Chrome trace_event file — spans as "X"
    events with fault firings interleaved as "i" instants — and the
    extra sections make it replayable via {!load}/{!replay} (and
    [bessctl flightrec]).

    Disarmed (the default), {!dump} is a no-op costing one ref read; the
    store calls it on crash and recovery, the chaos harness on assertion
    failure. *)

(** [arm ~dir ()] enables dumping into [dir] (created on first dump).
    Each dump writes [flightrec-<seq>-<reason>.json]. *)
val arm : ?max_spans:int -> ?max_events:int -> dir:string -> unit -> unit

val disarm : unit -> unit
val armed : unit -> bool

(** The fault registry's recent-firings reader, [(site, ordinal, ts_ns)]
    oldest first. bess_fault sits above bess_obs in the dependency
    order, so it injects its reader here at module-initialisation time. *)
val set_fault_source : (unit -> (string * int * int) list) -> unit

(** The injected reader's current view: recent fault firings as
    [(site, ordinal, ts_ns)], oldest first. The critical-path plane
    reads this to interleave fault firings with captured slow
    transactions without depending on bess_fault. *)
val fault_firings : unit -> (string * int * int) list

(** [set_aux_source name fn] registers (or replaces) a named auxiliary
    JSON section included in every rendered artifact as a top-level
    ["aux_<name>"] member. [fn] must return one complete JSON value; a
    producer that raises is dropped from the dump. *)
val set_aux_source : string -> (unit -> string) -> unit

val clear_aux_source : string -> unit

(** Render the artifact without writing it (works while disarmed). *)
val render : ?max_spans:int -> ?max_events:int -> reason:string -> unit -> string

(** [dump ~reason ()] writes the artifact and returns its path, or
    [None] while disarmed. *)
val dump : reason:string -> unit -> string option

(** One entry of the replayed timeline. *)
type item =
  | Span_item of {
      kind : string;
      start_ns : int;
      end_ns : int;
      track : int;
      attrs : (string * string) list;
    }
  | Fault_item of { site : string; ordinal : int; ts_ns : int }

val item_ts : item -> int

(** Read and parse a dump file. *)
val load : string -> (Json.t, string) result

(** The Chrome timeline back as typed items sorted by start time, fault
    instants interleaved with the spans they fired inside. *)
val replay : Json.t -> item list

val pp_item : Format.formatter -> item -> unit
