test/test_file_reorg.ml: Alcotest Array Bess Bess_storage Bess_vmem List Option
