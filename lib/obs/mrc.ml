(* Online miss-ratio-curve estimation from spatially-sampled reuse
   distances (SHARDS: "SHARDS: Spatially Hashed Approximate Reuse
   Distance Sampling" — Waldspurger et al., FAST'15).

   The classic Mattson stack algorithm computes, for every access, the
   LRU stack distance: how many *distinct* keys were touched since the
   previous access to this key. An access with stack distance d hits in
   any LRU cache of at least d slots, so the histogram of distances IS
   the miss-ratio curve at every size simultaneously. Tracking every
   access is too expensive to leave on in production; SHARDS keeps the
   curve online by filtering on a hash of the key: a key is tracked iff
   [mix key mod 2^rate_bits = 0], i.e. with probability R = 2^-rate_bits.
   Because the filter is a pure function of the key, every access to a
   tracked key is seen, so distances within the sampled universe are
   exact — and the sampled universe is an unbiased 1/R-scale model of
   the full one: a sampled stack distance d estimates a true distance
   d/R. The memory footprint is O(sampled keys), not O(keys).

   The sampled LRU stack is a hash table from key to a monotonically
   increasing position, plus a Fenwick tree marking which positions are
   live (the most recent position of each tracked key). The stack
   distance of a reuse at position p is then

       live - prefix(p) + 1

   (the number of tracked keys touched after p, plus the key itself) —
   one O(log cap) tree probe per sampled access. When the position space
   fills, positions are compacted in order and the tree rebuilt; the new
   capacity leaves 4x headroom over the live count, so compaction is
   amortized O(log) per access.

   Distances are recorded by *sampled* depth: an exact per-depth array
   up to {!max_exact}, log2 buckets beyond. A cache of C slots holds the
   top C stack positions, i.e. sampled depth up to C*R — so the
   predicted hit rate at size C sums sampled depths up to [C asr
   rate_bits] and divides by the sampled access count. The estimate
   applies the SHARDS-adj correction: the deviation of the actual
   sampled-access count from its expectation [n_total * R] is attributed
   to depth 1, which removes the systematic bias of small samples.

   [rate_bits = 0] disables sampling (every access tracked, distances
   exact) — the unit tests compare that mode against a brute-force
   Mattson stack. Everything here is deterministic: same access
   sequence, same curve, byte for byte. *)

type t = {
  rate_bits : int;
  sample_mask : int; (* 2^rate_bits - 1; sampled iff mix key land mask = 0 *)
  pos : (int, int) Hashtbl.t; (* key -> live position, 1-based *)
  mutable fen : int array; (* Fenwick tree over positions 1..cap *)
  mutable cap : int;
  mutable next_pos : int;
  mutable live : int; (* tracked keys = marked positions *)
  exact : int array; (* reuse count by sampled depth, 1..max_exact-1 *)
  overflow : int array; (* reuse count by log2 of sampled depth *)
  mutable n_total : int; (* all accesses, sampled or not *)
  mutable n_sampled : int;
  mutable n_cold : int; (* sampled first touches: infinite distance *)
}

(* Exact depths cover caches up to max_exact * 2^rate_bits pages; deeper
   reuses land in log2 buckets (interpolated at query time). *)
let max_exact = 1 lsl 15

(* splitmix64 finalizer: decorrelates the sample filter from any
   structure in the key encoding (areas, sequential page numbers). *)
let mix k =
  let z =
    let open Int64 in
    let z = of_int k in
    let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
    let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
    to_int (logxor z (shift_right_logical z 33))
  in
  z land max_int

let create ?(rate_bits = 4) () =
  if rate_bits < 0 || rate_bits > 20 then invalid_arg "Mrc.create: rate_bits out of range";
  {
    rate_bits;
    sample_mask = (1 lsl rate_bits) - 1;
    pos = Hashtbl.create 1024;
    fen = Array.make 1025 0;
    cap = 1024;
    next_pos = 1;
    live = 0;
    exact = Array.make max_exact 0;
    overflow = Array.make 62 0;
    n_total = 0;
    n_sampled = 0;
    n_cold = 0;
  }

let rate_bits t = t.rate_bits
let n_total t = t.n_total
let n_sampled t = t.n_sampled
let n_cold t = t.n_cold
let tracked_keys t = t.live

let fen_add t i v =
  let i = ref i in
  while !i <= t.cap do
    t.fen.(!i) <- t.fen.(!i) + v;
    i := !i + (!i land - !i)
  done

let fen_prefix t i =
  let s = ref 0 and i = ref i in
  while !i > 0 do
    s := !s + t.fen.(!i);
    i := !i - (!i land - !i)
  done;
  !s

(* Renumber live positions 1..live in stack order and rebuild the tree
   with 4x headroom, so the next compaction is >= 3*live accesses away. *)
let compact t =
  let entries = Hashtbl.fold (fun k p acc -> (p, k) :: acc) t.pos [] in
  let entries = List.sort compare entries in
  let cap = Stdlib.max 1024 (4 * Stdlib.max 1 t.live) in
  t.cap <- cap;
  t.fen <- Array.make (cap + 1) 0;
  Hashtbl.reset t.pos;
  t.next_pos <- 1;
  t.live <- List.length entries;
  List.iter
    (fun (_, k) ->
      Hashtbl.replace t.pos k t.next_pos;
      fen_add t t.next_pos 1;
      t.next_pos <- t.next_pos + 1)
    entries

let log2_floor d =
  let b = ref 0 and d = ref d in
  while !d > 1 do
    incr b;
    d := !d asr 1
  done;
  !b

let record t depth =
  if depth < max_exact then t.exact.(depth) <- t.exact.(depth) + 1
  else
    let b = log2_floor depth in
    t.overflow.(b) <- t.overflow.(b) + 1

let access t key =
  t.n_total <- t.n_total + 1;
  if mix key land t.sample_mask = 0 then begin
    t.n_sampled <- t.n_sampled + 1;
    (match Hashtbl.find_opt t.pos key with
    | Some p ->
        record t (t.live - fen_prefix t p + 1);
        fen_add t p (-1);
        (* Drop the stale binding before any compaction below rebuilds
           from the table — a dead position must not be resurrected. *)
        Hashtbl.remove t.pos key;
        t.live <- t.live - 1
    | None -> t.n_cold <- t.n_cold + 1);
    if t.next_pos > t.cap then compact t;
    Hashtbl.replace t.pos key t.next_pos;
    fen_add t t.next_pos 1;
    t.next_pos <- t.next_pos + 1;
    t.live <- t.live + 1
  end

(* Sampled reuses at depth <= limit, whole exact prefix plus linear
   interpolation inside any straddled log2 bucket. *)
let reuses_within t limit =
  let acc = ref 0 in
  for d = 1 to Stdlib.min limit (max_exact - 1) do
    acc := !acc + t.exact.(d)
  done;
  Array.iteri
    (fun b c ->
      if c > 0 then begin
        let lo = 1 lsl b and hi = (1 lsl (b + 1)) - 1 in
        if hi <= limit then acc := !acc + c
        else if lo <= limit then acc := !acc + (c * (limit - lo + 1) / (hi - lo + 1))
      end)
    t.overflow;
  !acc

let predicted_hit_rate t ~size =
  if size <= 0 then 0.0
  else begin
    let limit = Stdlib.max 1 (size asr t.rate_bits) in
    let hits = reuses_within t limit in
    (* SHARDS-adj: credit the sampling deviation E[n_sampled] - n_sampled
       to depth 1, normalizing by the expected sample count. *)
    let expected = t.n_total asr t.rate_bits in
    let adj = expected - t.n_sampled in
    let hits, denom =
      if expected > 0 then (hits + adj, expected) else (hits, t.n_sampled)
    in
    if denom <= 0 then 0.0
    else Stdlib.min 1.0 (Stdlib.max 0.0 (float_of_int hits /. float_of_int denom))
  end

let curve t ~max_size =
  let rec go size acc =
    if size > max_size then List.rev acc
    else go (size * 2) ((size, predicted_hit_rate t ~size) :: acc)
  in
  go 1 []

let json_of ?(max_size = 1 lsl 20) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"rate_bits\":%d,\"accesses\":%d,\"sampled\":%d,\"cold\":%d,\"tracked_keys\":%d,\"curve\":["
       t.rate_bits t.n_total t.n_sampled t.n_cold t.live);
  List.iteri
    (fun i (size, rate) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"size\":%d,\"hit_pct\":%.2f}" size (100.0 *. rate)))
    (curve t ~max_size);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let fingerprint t =
  Bess_util.Crc32.to_int (Bess_util.Crc32.string (json_of t))
