(** The shared mapping table (SMT) of section 4.1.2.

    Every process reserves the same number of PVMA frames; the SMT pins
    each cached database page to one *virtual frame index*, identical for
    all processes ("if a process maps a page at some frame, all processes
    see this page at this frame (but possibly at different address)").
    Shared pointers are SVMA offsets [vframe * page_size + offset],
    resolvable through any process's PVMA base. *)

type t

val create : n_vframes:int -> t
val n_vframes : t -> int
val vframe_of : t -> Page_id.t -> int option
val page_at : t -> int -> Page_id.t option
val n_assigned : t -> int

(** Assign a frame to a page — the existing one if present, else an
    unused frame; [None] when the SVMA is exhausted. *)
val assign : t -> Page_id.t -> int option

(** The page left the shared cache: free its frame. *)
val release : t -> Page_id.t -> unit

val stats : t -> Bess_util.Stats.t

(** SVMA pointer arithmetic. *)
val svma_of : t -> page_size:int -> vframe:int -> offset:int -> int

val decompose : page_size:int -> int -> int * int
