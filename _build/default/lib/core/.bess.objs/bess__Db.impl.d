lib/core/db.ml: Bess_storage Bess_wal Bytes Catalog Fetcher Filename Printf Server Session Sys
