(* Critical-path latency attribution.

   The span plane (PR 2) records *where* time was spent; this module
   answers *whose fault the tail is*: for every closed transaction root
   span it decomposes the root's wall-clock window into exhaustive,
   non-overlapping phases — lock wait, WAL force, network transit,
   client retry backoff, server work, scheduler queueing lag, and
   uncategorised remainder — whose durations sum to the measured
   transaction latency *exactly*. The per-phase totals feed histograms
   under the "critpath" registry namespace (so Series windows carry
   per-phase tail percentiles), and the slowest transactions are kept
   whole — span subtree plus the fault firings that interleaved them —
   in a bounded top-K reservoir surfaced by [bessctl slow] and by every
   flight-recorder dump.

   The attribution is deepest-span-wins: a root's window is segmented
   by recursively clipping each child to its parent's still-uncovered
   interval (siblings sorted by start, overlap clipped away), so the
   innermost span owns the time and double counting is impossible.
   Two reassignment passes then refine ownership without changing the
   sum: parked cross-call [lock.wait] root spans (matched through the
   shared "txn" attribute) re-label intersecting backoff/self time as
   lock wait — a client that backs off because the server said Blocked
   is really waiting for a lock — and the scheduler's reported event
   lag ("sched_lag_ns" on the root) converts leading self time into
   queueing delay.

   Consumption is online, through {!Span.set_close_hook}: descendants
   are buffered per open root as they close and the whole tree is
   attributed the moment the root closes, so attribution never depends
   on span-ring retention even with 10^5 concurrently open roots. *)

type phase = Lock | Wal | Net | Backoff | Server | Sched | Twopc | Other

let phases = [ Lock; Wal; Net; Backoff; Server; Sched; Twopc; Other ]

let phase_name = function
  | Lock -> "lock"
  | Wal -> "wal"
  | Net -> "net"
  | Backoff -> "backoff"
  | Server -> "server"
  | Sched -> "sched"
  | Twopc -> "2pc"
  | Other -> "other"

let phase_index = function
  | Lock -> 0
  | Wal -> 1
  | Net -> 2
  | Backoff -> 3
  | Server -> 4
  | Sched -> 5
  | Twopc -> 6
  | Other -> 7

let n_phases = 8

(* Ownership of a span kind's *self* time (children always win over the
   parent). Kinds not listed — future substrates — count as server
   work: anything the system does on a request's behalf is server time
   unless it is specifically a wait. *)
let phase_of_kind = function
  | "lock.wait" | "lock.acquire" -> Lock
  | "wal.append" | "wal.force" | "wal.group_force" | "wal.ticket_wait" -> Wal
  | "net.rpc" | "net.wire" | "net.send" -> Net
  | "client.backoff" -> Backoff
  (* Coordinator self time: vote collection bookkeeping and the decide
     fan-out — the child net/wal spans underneath still claim their own
     windows, so this is pure 2PC protocol overhead. *)
  | "2pc.prepare" | "2pc.decide" -> Twopc
  | "session.txn" | "sched.txn" | "bench.workload" -> Other
  | _ -> Server

(* ---- Segmentation --------------------------------------------------------- *)

(* A segment [(start, end, phase)] of the root window. The invariant
   maintained by every pass below: segments are disjoint, sorted by
   start, and cover the root window exactly. *)

(* Deepest-span-wins walk: [node] owns [lo, hi); each child clipped to
   the still-uncovered suffix claims its intersection and recurses;
   whatever no child covers is the node's self time. *)
let rec segment_node segs children (node : Span.span) lo hi =
  let kids =
    List.sort
      (fun (a : Span.span) (b : Span.span) ->
        compare (a.Span.start_ns, a.Span.id) (b.Span.start_ns, b.Span.id))
      (Hashtbl.find_all children node.Span.id)
  in
  let cursor = ref lo in
  List.iter
    (fun (k : Span.span) ->
      let ks = if k.Span.start_ns > !cursor then k.Span.start_ns else !cursor in
      let ke = if k.Span.end_ns < hi then k.Span.end_ns else hi in
      if ke > ks then begin
        if ks > !cursor then segs := (!cursor, ks, phase_of_kind node.Span.kind) :: !segs;
        segment_node segs children k ks ke;
        cursor := ke
      end)
    kids;
  if hi > !cursor then segs := (!cursor, hi, phase_of_kind node.Span.kind) :: !segs

(* Re-label the intersection of each parked lock-wait interval with any
   Backoff/Other segment as Lock: the client was "idle" or backing off
   precisely because its lock request sat in a queue. Segments owned by
   real work (Net, Wal, Server) are left alone — that time was spent
   regardless of the waiting lock. *)
let apply_lock_waits segs intervals =
  List.fold_left
    (fun segs (ls, le) ->
      List.concat_map
        (fun ((s, e, ph) as seg) ->
          match ph with
          | Backoff | Other ->
              let os = if ls > s then ls else s and oe = if le < e then le else e in
              if oe > os then
                List.filter (fun (a, b, _) -> b > a) [ (s, os, ph); (os, oe, Lock); (oe, e, ph) ]
              else [ seg ]
          | _ -> [ seg ])
        segs)
    segs intervals

(* Convert up to [lag] ns of Other time (earliest first) into Sched:
   the driver reports how late the scheduler ran this transaction's
   events, and that lag shows up as otherwise-unexplained root self
   time. Clamping to the available Other time keeps the sum exact even
   if the reported lag overlaps time already attributed elsewhere. *)
let apply_sched_lag segs lag =
  if lag <= 0 then segs
  else begin
    let remaining = ref lag in
    List.concat_map
      (fun ((s, e, ph) as seg) ->
        if ph = Other && !remaining > 0 then begin
          let take = if e - s < !remaining then e - s else !remaining in
          remaining := !remaining - take;
          List.filter (fun (a, b, _) -> b > a) [ (s, s + take, Sched); (s + take, e, Other) ]
        end
        else [ seg ])
      segs
  end

(* ---- The attribution sink -------------------------------------------------- *)

type blame = { b_total_ns : int; b_phase_ns : int array (* indexed by phase_index *) }

type slow_txn = {
  st_root : Span.span;
  st_spans : Span.span list; (* descendants + matched parked lock waits, close order *)
  st_blame : blame;
  st_faults : (string * int * int) list; (* firings inside the root window *)
}

type t = {
  root_kinds : (string, unit) Hashtbl.t;
  top_k : int;
  stats : Bess_util.Stats.t;
  pending : (int, Span.span) Hashtbl.t; (* root id -> closed descendants (multi) *)
  parked : (string, Span.span list) Hashtbl.t; (* txn attr -> closed lock.wait roots *)
  totals : int array; (* cumulative per-phase ns, for blame fractions *)
  mutable total_ns : int;
  mutable n_txns : int;
  mutable slow : slow_txn list; (* sorted: duration desc, then root id asc *)
}

let default_root_kinds = [ "sched.txn"; "session.txn" ]

let create ?(top_k = 32) ?(root_kinds = default_root_kinds) () =
  if top_k <= 0 then invalid_arg "Critpath.create: top_k must be positive";
  let rk = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace rk k ()) root_kinds;
  let stats = Bess_util.Stats.create () in
  (* Make every phase histogram visible before the first sample. *)
  ignore (Bess_util.Stats.histogram stats "critpath.txn_ns");
  ignore (Bess_util.Stats.histogram stats "critpath.commit_ns");
  List.iter
    (fun p -> ignore (Bess_util.Stats.histogram stats ("critpath." ^ phase_name p ^ "_ns")))
    phases;
  Registry.register_stats "critpath" stats;
  {
    root_kinds = rk;
    top_k;
    stats;
    pending = Hashtbl.create 1024;
    parked = Hashtbl.create 256;
    totals = Array.make n_phases 0;
    total_ns = 0;
    n_txns = 0;
    slow = [];
  }

let is_root_kind t kind = Hashtbl.mem t.root_kinds kind

(* The nearest *open* ancestor whose kind is a root kind — the
   transaction this closed span belongs to, or [None] for spans outside
   any transaction (bench scaffolding, background work). *)
let owner t c (s : Span.span) =
  let rec up id =
    match Span.find_span c id with
    | None -> None
    | Some (sp : Span.span) ->
        if sp.Span.end_ns < 0 && is_root_kind t sp.Span.kind then Some sp.Span.id
        else (match sp.Span.parent with None -> None | Some pid -> up pid)
  in
  match s.Span.parent with None -> None | Some pid -> up pid

(* ---- Top-K reservoir ------------------------------------------------------- *)

(* Admission: while not full everything enters; at capacity a candidate
   must be *strictly* slower than the current minimum (ties keep the
   incumbent — first observed wins). Order inside: duration descending,
   root id ascending, so same-seed runs capture identical sets in
   identical order. *)
let offer_slow t entry =
  let dur s = Span.duration s.st_root in
  let before a b =
    let da = dur a and db = dur b in
    if da <> db then da > db else a.st_root.Span.id < b.st_root.Span.id
  in
  let rec insert e = function
    | [] -> [ e ]
    | x :: rest -> if before e x then e :: x :: rest else x :: insert e rest
  in
  let n = List.length t.slow in
  if n < t.top_k then t.slow <- insert entry t.slow
  else
    let min_dur = dur (List.nth t.slow (n - 1)) in
    if dur entry > min_dur then begin
      Bess_util.Stats.incr t.stats "critpath.slow_evicted";
      t.slow <- insert entry (List.filteri (fun i _ -> i < n - 1) t.slow)
    end
    else Bess_util.Stats.incr t.stats "critpath.slow_rejected"

(* ---- Root processing ------------------------------------------------------- *)

let int_attr (s : Span.span) name =
  match List.assoc_opt name s.Span.attrs with
  | None -> None
  | Some v -> int_of_string_opt v

let process_root t (root : Span.span) =
  let descendants = List.rev (Hashtbl.find_all t.pending root.Span.id) in
  while Hashtbl.mem t.pending root.Span.id do
    Hashtbl.remove t.pending root.Span.id
  done;
  let lock_waits =
    match List.assoc_opt "txn" root.Span.attrs with
    | None -> []
    | Some txn ->
        let spans = Option.value ~default:[] (Hashtbl.find_opt t.parked txn) in
        Hashtbl.remove t.parked txn;
        List.rev spans
  in
  let lo = root.Span.start_ns and hi = root.Span.end_ns in
  let children = Hashtbl.create (List.length descendants + 1) in
  List.iter
    (fun (s : Span.span) ->
      match s.Span.parent with Some pid -> Hashtbl.add children pid s | None -> ())
    descendants;
  let segs = ref [] in
  segment_node segs children root lo hi;
  let segs = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !segs in
  let segs =
    apply_lock_waits segs
      (List.filter_map
         (fun (w : Span.span) ->
           let ws = if w.Span.start_ns > lo then w.Span.start_ns else lo in
           let we = if w.Span.end_ns < hi then w.Span.end_ns else hi in
           if we > ws then Some (ws, we) else None)
         lock_waits)
  in
  let segs =
    match int_attr root "sched_lag_ns" with
    | Some lag -> apply_sched_lag segs lag
    | None -> segs
  in
  let phase_ns = Array.make n_phases 0 in
  List.iter
    (fun (s, e, ph) ->
      let i = phase_index ph in
      phase_ns.(i) <- phase_ns.(i) + (e - s))
    segs;
  let total = hi - lo in
  let sum = Array.fold_left ( + ) 0 phase_ns in
  (* The passes above conserve coverage by construction; a mismatch is
     a bug, counted honestly rather than silently absorbed. *)
  if sum <> total then Bess_util.Stats.incr t.stats "critpath.attribution_gap";
  Bess_util.Stats.incr t.stats "critpath.txns";
  t.n_txns <- t.n_txns + 1;
  t.total_ns <- t.total_ns + total;
  Array.iteri (fun i v -> t.totals.(i) <- t.totals.(i) + v) phase_ns;
  Bess_util.Stats.observe t.stats "critpath.txn_ns" total;
  let outcome = List.assoc_opt "outcome" root.Span.attrs in
  (match outcome with
  | Some o -> Bess_util.Stats.incr_labeled t.stats "critpath.outcome" ~label:o
  | None -> Bess_util.Stats.incr_labeled t.stats "critpath.outcome" ~label:"commit");
  (match outcome with
  | None | Some "commit" -> Bess_util.Stats.observe t.stats "critpath.commit_ns" total
  | Some _ -> ());
  if List.mem_assoc "unclosed" root.Span.attrs then
    Bess_util.Stats.incr t.stats "critpath.unclosed_roots";
  List.iter
    (fun p ->
      Bess_util.Stats.observe t.stats
        ("critpath." ^ phase_name p ^ "_ns")
        phase_ns.(phase_index p))
    phases;
  let blame = { b_total_ns = total; b_phase_ns = phase_ns } in
  let faults =
    List.filter (fun (_, _, ts) -> ts >= lo && ts <= hi) (Flightrec.fault_firings ())
  in
  offer_slow t { st_root = root; st_spans = descendants @ lock_waits; st_blame = blame; st_faults = faults }

let on_close t c (s : Span.span) =
  if is_root_kind t s.Span.kind then process_root t s
  else if s.Span.kind = "lock.wait" && s.Span.parent = None then begin
    match List.assoc_opt "txn" s.Span.attrs with
    | None -> ()
    | Some txn ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.parked txn) in
        Hashtbl.replace t.parked txn (s :: existing)
  end
  else
    match owner t c s with
    | Some root_id -> Hashtbl.add t.pending root_id s
    | None ->
        (* Parentless spans never belonged to a transaction (bench
           scaffolding, background maintenance) — benign. A span whose
           parent chain exists but reaches no open root closed after
           its transaction did: that is the anomaly the no-orphans SLO
           rule watches. *)
        if s.Span.parent = None then
          Bess_util.Stats.incr t.stats "critpath.background_spans"
        else Bess_util.Stats.incr t.stats "critpath.orphan_spans"

(* ---- Accessors ------------------------------------------------------------- *)

let stats t = t.stats
let txns t = t.n_txns
let total_ns t = t.total_ns
let blame_totals t = List.map (fun p -> (phase_name p, t.totals.(phase_index p))) phases
let slow t = t.slow

(* One line capturing the whole decomposition — equal for same-seed
   runs, the determinism check the bench asserts. *)
let fingerprint t =
  Printf.sprintf "txns=%d total=%d %s" t.n_txns t.total_ns
    (String.concat " "
       (List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v) (blame_totals t)))

(* ---- JSON ------------------------------------------------------------------- *)

let json_of_span (s : Span.span) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"id\":%d,\"kind\":%s,\"start_ns\":%d,\"end_ns\":%d" s.Span.id
       (Registry.json_string s.Span.kind)
       s.Span.start_ns s.Span.end_ns);
  (match s.Span.parent with
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p)
  | None -> ());
  Buffer.add_string buf ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%s:%s" (Registry.json_string k) (Registry.json_string v)))
    s.Span.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let json_of_slow_txn e =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"root\":";
  Buffer.add_string buf (json_of_span e.st_root);
  Buffer.add_string buf (Printf.sprintf ",\"total_ns\":%d,\"blame\":{" e.st_blame.b_total_ns);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (phase_name p) e.st_blame.b_phase_ns.(phase_index p)))
    phases;
  Buffer.add_string buf "},\"spans\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_of_span s))
    e.st_spans;
  Buffer.add_string buf "],\"faults\":[";
  List.iteri
    (fun i (site, ordinal, ts) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"site\":%s,\"ordinal\":%d,\"ts_ns\":%d}" (Registry.json_string site)
           ordinal ts))
    e.st_faults;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let json_of_slow t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_of_slow_txn e))
    t.slow;
  Buffer.add_string buf "]";
  Buffer.contents buf

(* ---- Installation ----------------------------------------------------------- *)

let the_sink : t option ref = ref None

let install s =
  the_sink := s;
  match s with
  | None ->
      Span.set_close_hook None;
      Flightrec.clear_aux_source "slow_txns"
  | Some t ->
      Span.set_close_hook (Some (fun c sp -> on_close t c sp));
      (* Every flight-recorder dump now carries the slow-transaction
         reservoir alongside the span/fault timeline. *)
      Flightrec.set_aux_source "slow_txns" (fun () -> json_of_slow t)

let installed () = !the_sink
