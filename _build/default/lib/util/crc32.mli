(** CRC-32 (IEEE) checksums for log records and superblocks. *)

(** [update crc b off len] extends a running checksum. Start from [0l]. *)
val update : int32 -> Bytes.t -> int -> int -> int32

(** Checksum of a byte range (whole buffer by default). *)
val bytes : ?off:int -> ?len:int -> Bytes.t -> int32

val string : string -> int32

(** Checksum as a non-negative [int] suitable for {!Codec.set_u32}. *)
val to_int : int32 -> int
