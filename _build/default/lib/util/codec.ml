(* Little-endian fixed-width integer codecs over [Bytes.t].

   Every persistent structure in BeSS (slot arrays, segment headers, log
   records, large-object tree nodes) is laid out with these primitives so
   that the on-disk format is byte-identical across runs and platforms. *)

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let set_u32 b off v =
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

(* 63-bit OCaml ints stored in 8 bytes; the sign bit is preserved through
   Int64 conversion so negative sentinels round-trip. *)
let get_i64 b off = Int64.to_int (Bytes.get_int64_le b off)
let set_i64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_int64 b off = Bytes.get_int64_le b off
let set_int64 b off v = Bytes.set_int64_le b off v

let get_bytes b off len = Bytes.sub b off len
let set_bytes b off src = Bytes.blit src 0 b off (Bytes.length src)

(* Length-prefixed strings: u32 length then payload. Returns the value and
   the offset just past it, so decoders can be chained. *)
let set_string b off s =
  set_u32 b off (String.length s);
  Bytes.blit_string s 0 b (off + 4) (String.length s);
  off + 4 + String.length s

let get_string b off =
  let len = get_u32 b off in
  (Bytes.sub_string b (off + 4) len, off + 4 + len)

let string_size s = 4 + String.length s
