(* Write-ahead log records, ARIES-flavoured (Mohan et al. [21]).

   Update records carry physical before/after images of a byte range of a
   page; compensation records (CLRs) are redo-only and carry the
   undo-next-LSN so rollback never undoes an undo. Prepare records support
   the 2PC participant state (section 3 of the paper). Records serialize
   with a length prefix and CRC so the log tail can be scanned and a torn
   final record detected and discarded. *)

type page_id = { area : int; page : int }

let pp_page_id ppf p = Fmt.pf ppf "%d:%d" p.area p.page

type body =
  | Update of { txn : int; page : page_id; offset : int; before : Bytes.t; after : Bytes.t }
  | Clr of { txn : int; page : page_id; offset : int; image : Bytes.t; undo_next : int }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | End of { txn : int }
  | Prepare of { txn : int; coordinator : int }
  | Decision of { gid : int; participants : (int * int) list }
  | Begin_checkpoint
  | End_checkpoint of {
      active : (int * int) list; (* txn, last_lsn *)
      dirty : (page_id * int) list; (* page, recovery lsn *)
    }

type t = { prev_lsn : int (* previous record of the same transaction, 0 = none *); body : body }

let txn_of t =
  match t.body with
  | Update { txn; _ } | Clr { txn; _ } | Commit { txn } | Abort { txn } | End { txn }
  | Prepare { txn; _ } ->
      Some txn
  | Decision _ | Begin_checkpoint | End_checkpoint _ -> None

let tag_of_body = function
  | Update _ -> 1
  | Clr _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | End _ -> 5
  | Prepare _ -> 6
  | Begin_checkpoint -> 7
  | End_checkpoint _ -> 8
  | Decision _ -> 9

let pp ppf t =
  match t.body with
  | Update u ->
      Fmt.pf ppf "UPDATE txn=%d page=%a off=%d len=%d" u.txn pp_page_id u.page u.offset
        (Bytes.length u.after)
  | Clr c ->
      Fmt.pf ppf "CLR txn=%d page=%a off=%d undo_next=%d" c.txn pp_page_id c.page c.offset
        c.undo_next
  | Commit c -> Fmt.pf ppf "COMMIT txn=%d" c.txn
  | Abort a -> Fmt.pf ppf "ABORT txn=%d" a.txn
  | End e -> Fmt.pf ppf "END txn=%d" e.txn
  | Prepare p -> Fmt.pf ppf "PREPARE txn=%d coord=%d" p.txn p.coordinator
  | Decision d ->
      Fmt.pf ppf "DECISION gid=%d participants=[%a]" d.gid
        Fmt.(list ~sep:comma (pair ~sep:(any ":") int int))
        d.participants
  | Begin_checkpoint -> Fmt.pf ppf "BEGIN_CKPT"
  | End_checkpoint e ->
      Fmt.pf ppf "END_CKPT active=%d dirty=%d" (List.length e.active) (List.length e.dirty)

(* ---- Serialization ------------------------------------------------------ *)

let encode_body buf body =
  let put_u32 v =
    let b = Bytes.create 4 in
    Bess_util.Codec.set_u32 b 0 v;
    Buffer.add_bytes buf b
  in
  let put_bytes b =
    put_u32 (Bytes.length b);
    Buffer.add_bytes buf b
  in
  let put_page (p : page_id) =
    put_u32 p.area;
    put_u32 p.page
  in
  match body with
  | Update u ->
      put_u32 u.txn;
      put_page u.page;
      put_u32 u.offset;
      put_bytes u.before;
      put_bytes u.after
  | Clr c ->
      put_u32 c.txn;
      put_page c.page;
      put_u32 c.offset;
      put_bytes c.image;
      put_u32 c.undo_next
  | Commit { txn } | Abort { txn } | End { txn } -> put_u32 txn
  | Prepare p ->
      put_u32 p.txn;
      put_u32 p.coordinator
  | Decision d ->
      put_u32 d.gid;
      put_u32 (List.length d.participants);
      List.iter
        (fun (shard, txn) ->
          put_u32 shard;
          put_u32 txn)
        d.participants
  | Begin_checkpoint -> ()
  | End_checkpoint e ->
      put_u32 (List.length e.active);
      List.iter
        (fun (txn, lsn) ->
          put_u32 txn;
          put_u32 lsn)
        e.active;
      put_u32 (List.length e.dirty);
      List.iter
        (fun (p, lsn) ->
          put_page p;
          put_u32 lsn)
        e.dirty

(* Full record image: [total_len u32][crc u32][tag u8][prev_lsn u32][body].
   total_len covers tag..body; crc covers the same range. *)
let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (tag_of_body t.body));
  let b4 = Bytes.create 4 in
  Bess_util.Codec.set_u32 b4 0 t.prev_lsn;
  Buffer.add_bytes buf b4;
  encode_body buf t.body;
  let payload = Buffer.to_bytes buf in
  let out = Bytes.create (8 + Bytes.length payload) in
  Bess_util.Codec.set_u32 out 0 (Bytes.length payload);
  Bess_util.Codec.set_u32 out 4 (Bess_util.Crc32.to_int (Bess_util.Crc32.bytes payload));
  Bytes.blit payload 0 out 8 (Bytes.length payload);
  out

exception Torn_record

(* [decode b off] parses the record at [off]; returns it and the offset of
   the next record. Raises [Torn_record] on truncation or CRC mismatch
   (expected at the very tail after a crash). *)
let decode b off =
  if off + 8 > Bytes.length b then raise Torn_record;
  let len = Bess_util.Codec.get_u32 b off in
  let crc = Bess_util.Codec.get_u32 b (off + 4) in
  if len = 0 || off + 8 + len > Bytes.length b then raise Torn_record;
  if Bess_util.Crc32.to_int (Bess_util.Crc32.bytes ~off:(off + 8) ~len b) <> crc then
    raise Torn_record;
  let pos = ref (off + 8) in
  let u8 () =
    let v = Bess_util.Codec.get_u8 b !pos in
    incr pos;
    v
  in
  let u32 () =
    let v = Bess_util.Codec.get_u32 b !pos in
    pos := !pos + 4;
    v
  in
  let bytes_ () =
    let n = u32 () in
    let v = Bytes.sub b !pos n in
    pos := !pos + n;
    v
  in
  let page () =
    let area = u32 () in
    let page = u32 () in
    { area; page }
  in
  let tag = u8 () in
  let prev_lsn = u32 () in
  let body =
    match tag with
    | 1 ->
        let txn = u32 () in
        let pg = page () in
        let offset = u32 () in
        let before = bytes_ () in
        let after = bytes_ () in
        Update { txn; page = pg; offset; before; after }
    | 2 ->
        let txn = u32 () in
        let pg = page () in
        let offset = u32 () in
        let image = bytes_ () in
        let undo_next = u32 () in
        Clr { txn; page = pg; offset; image; undo_next }
    | 3 -> Commit { txn = u32 () }
    | 4 -> Abort { txn = u32 () }
    | 5 -> End { txn = u32 () }
    | 6 ->
        let txn = u32 () in
        let coordinator = u32 () in
        Prepare { txn; coordinator }
    | 7 -> Begin_checkpoint
    | 8 ->
        let n_active = u32 () in
        let active = List.init n_active (fun _ ->
            let txn = u32 () in
            let lsn = u32 () in
            (txn, lsn))
        in
        let n_dirty = u32 () in
        let dirty = List.init n_dirty (fun _ ->
            let pg = page () in
            let lsn = u32 () in
            (pg, lsn))
        in
        End_checkpoint { active; dirty }
    | 9 ->
        let gid = u32 () in
        let n = u32 () in
        let participants = List.init n (fun _ ->
            let shard = u32 () in
            let txn = u32 () in
            (shard, txn))
        in
        Decision { gid; participants }
    | _ -> raise Torn_record
  in
  ({ prev_lsn; body }, off + 8 + len)
