(* The process-wide metrics registry.

   Every substrate registers its {!Bess_util.Stats.t} (and any standalone
   {!Bess_util.Histogram.t}) under a namespaced key -- "vmem", "cache",
   "wal", "lock", "net", "session", ... -- so a snapshot of the whole
   system's counters can be taken at any point and diffed against another:
   the experiments argue from *counts* (faults taken, protection changes,
   log forces, messages sent), and a before/after delta is what ties a
   workload to the counters it moved.

   Besides counters and histograms the registry holds *gauges*: named
   callbacks sampled on demand at snapshot time, reporting state rather
   than flow -- cache occupancy, WAL backlog, lock-table depth. Gauges are
   what the windowed sampler ({!Series}) and the flight recorder read to
   see the system's shape, not just its throughput.

   Registration replaces an existing binding for the same key: substrates
   register at construction time, so the registry always reflects the most
   recently created instance of each namespace. Keys in a snapshot are
   flattened as [<reg key>.<counter name>], except that a counter already
   carrying its namespace prefix (most do: "vmem.reserve_calls" under
   "vmem") is kept as-is rather than doubled. Standalone histograms and
   gauges are flattened by the same rule, so a histogram registered under
   ("wal", name) can never clobber the "wal" stats namespace. *)

type t = {
  sources : (string, Bess_util.Stats.t) Hashtbl.t;
  hists : (string, Bess_util.Histogram.t) Hashtbl.t; (* key = flattened name *)
  gauges : (string, unit -> int) Hashtbl.t; (* key = flattened name *)
}

let create () =
  { sources = Hashtbl.create 16; hists = Hashtbl.create 8; gauges = Hashtbl.create 16 }

(* The default, process-wide registry that substrates register into. *)
let default = create ()

(* Every metric name is [<namespace>.<rest>] with this table as the set of
   legal first components; the hygiene test greps the source tree for
   metric-name literals and checks them against it (the same pattern as
   Span.kinds for span kinds). Keep sorted. *)
let metric_namespaces =
  [
    "2pc";
    "area";
    "buddy";
    "cache";
    "callback";
    "critpath";
    "event";
    "fault";
    "flat";
    "heat";
    "lob";
    "lock";
    "log";
    "mrc";
    "net";
    "node";
    "oid_store";
    "phys";
    "reorg";
    "sched";
    "server";
    "session";
    "slo";
    "smt";
    "soft";
    "span";
    "state_clock";
    "store";
    "two_level";
    "vmem";
    "wal";
  ]

let flatten_key key name =
  let prefix = key ^ "." in
  if String.length name >= String.length prefix
     && String.sub name 0 (String.length prefix) = prefix
  then name
  else prefix ^ name

let register_stats ?(registry = default) key stats =
  Hashtbl.replace registry.sources key stats

(* Standalone histograms live in their own table keyed by the flattened
   name, so [register_histogram "wal" h] can never shadow the Stats
   binding registered under "wal" (it used to: both kinds shared one
   table and the histogram key bypassed [flatten_key]). *)
let register_histogram ?(registry = default) key name hist =
  Hashtbl.replace registry.hists (flatten_key key name) hist

(* Gauges are registered under a (key, name) pair like histograms; the
   callback must be a pure read of substrate state -- it runs at every
   snapshot, including from the windowed sampler. *)
let register_gauge ?(registry = default) key name fn =
  Hashtbl.replace registry.gauges (flatten_key key name) fn

(* [unregister key] drops the whole namespace: the stats binding plus
   every standalone histogram and gauge whose flattened name lives under
   [key ^ "."]. *)
let unregister ?(registry = default) key =
  Hashtbl.remove registry.sources key;
  let prefix = key ^ "." in
  let in_ns k =
    k = key
    || String.length k >= String.length prefix
       && String.sub k 0 (String.length prefix) = prefix
  in
  let drop tbl =
    let doomed = Hashtbl.fold (fun k _ acc -> if in_ns k then k :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) doomed
  in
  drop registry.hists;
  drop registry.gauges

let keys ?(registry = default) () =
  let add tbl acc = Hashtbl.fold (fun k _ acc -> k :: acc) tbl acc in
  add registry.sources (add registry.hists (add registry.gauges []))
  |> List.sort_uniq String.compare

(* Scoped reset: the registry is process-global mutable state, so tests
   and bench workloads that build substrates would otherwise leak
   registrations into each other. [f] runs against an emptied registry;
   the previous bindings are restored afterwards, exceptions included. *)
let with_fresh ?(registry = default) f =
  let save tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let restore tbl saved =
    Hashtbl.reset tbl;
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) saved
  in
  let saved_sources = save registry.sources
  and saved_hists = save registry.hists
  and saved_gauges = save registry.gauges in
  Hashtbl.reset registry.sources;
  Hashtbl.reset registry.hists;
  Hashtbl.reset registry.gauges;
  Fun.protect
    ~finally:(fun () ->
      restore registry.sources saved_sources;
      restore registry.hists saved_hists;
      restore registry.gauges saved_gauges)
    f

(* ---- Snapshots ----------------------------------------------------------- *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_mean : float;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_p999 : int;
  h_buckets : (int * int) list; (* cumulative (inclusive upper bound, count) *)
}

type snapshot = {
  counters : (string * int) list; (* sorted by name *)
  hists : (string * hist_summary) list; (* sorted by name *)
  gauges : (string * int) list; (* sorted by name; values sampled at snapshot *)
}

let counters s = s.counters
let histograms s = s.hists
let gauges s = s.gauges

let summarize h =
  {
    h_count = Bess_util.Histogram.count h;
    h_sum = Bess_util.Histogram.sum h;
    h_min = Bess_util.Histogram.min h;
    h_max = Bess_util.Histogram.max h;
    h_mean = Bess_util.Histogram.mean h;
    h_p50 = Bess_util.Histogram.percentile h 50.0;
    h_p90 = Bess_util.Histogram.percentile h 90.0;
    h_p99 = Bess_util.Histogram.percentile h 99.0;
    h_p999 = Bess_util.Histogram.percentile h 99.9;
    h_buckets = Bess_util.Histogram.buckets h;
  }

let by_name (a, _) (b, _) = String.compare a b

(* Iterate every live histogram — those inside registered Stats sources
   plus the standalone table — with flattened names. The windowed
   sampler uses the raw buckets to compute per-window tail percentiles
   from bucket deltas, which a summarized snapshot cannot provide. *)
let iter_histograms ?(registry = default) f =
  Hashtbl.iter
    (fun key st ->
      List.iter
        (fun (name, h) -> f (flatten_key key name) h)
        (Bess_util.Stats.histograms st))
    registry.sources;
  Hashtbl.iter (fun key h -> f key h) registry.hists

let snapshot ?(registry = default) () =
  let counters = ref [] and hists = ref [] in
  Hashtbl.iter
    (fun key st ->
      List.iter
        (fun (name, v) -> counters := (flatten_key key name, v) :: !counters)
        (Bess_util.Stats.to_list st);
      List.iter
        (fun (name, h) -> hists := (flatten_key key name, summarize h) :: !hists)
        (Bess_util.Stats.histograms st))
    registry.sources;
  Hashtbl.iter (fun key h -> hists := (key, summarize h) :: !hists) registry.hists;
  let gauges =
    Hashtbl.fold
      (fun key fn acc ->
        (* A gauge whose substrate died under it (closure raising) is
           dropped from the snapshot rather than fabricated as 0. *)
        match fn () with v -> (key, v) :: acc | exception _ -> acc)
      registry.gauges []
  in
  {
    counters = List.sort by_name !counters;
    hists = List.sort by_name !hists;
    gauges = List.sort by_name gauges;
  }

(* [diff ~before ~after] is the per-counter delta (counters absent from
   [before] count from 0; zero deltas are dropped unless [keep_zeros],
   which the windowed sampler sets so a quiet window still distinguishes
   "untouched counter" from "unregistered counter"). Histogram count/sum
   are diffed the same way; min/max/mean/percentiles are reported from
   [after] -- the power-of-two buckets cannot be "subtracted" into exact
   interval percentiles, and the shape of the whole run is what the
   reports compare. A counter that shrank (its substrate was re-created
   mid-window) yields a negative delta rather than being hidden. Gauges
   are state, not flow: the [after] values are carried through as-is. *)
let diff ?(keep_zeros = false) ~before ~after () =
  let base = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before.counters;
  let counters =
    List.filter_map
      (fun (k, v) ->
        let d = v - Option.value ~default:0 (Hashtbl.find_opt base k) in
        if d = 0 && not keep_zeros then None else Some (k, d))
      after.counters
  in
  let hbase = Hashtbl.create 16 in
  List.iter (fun (k, h) -> Hashtbl.replace hbase k h) before.hists;
  let hists =
    List.map
      (fun (k, h) ->
        match Hashtbl.find_opt hbase k with
        | None -> (k, h)
        | Some h0 when h.h_count >= h0.h_count ->
            (k, { h with h_count = h.h_count - h0.h_count; h_sum = h.h_sum - h0.h_sum })
        (* count shrank: the substrate was re-created mid-window, so a
           delta against the dead instance is meaningless -- report the
           new instance whole. *)
        | Some _ -> (k, h))
      after.hists
  in
  { counters; hists; gauges = after.gauges }

(* ---- Rendering ------------------------------------------------------------ *)

let pp_hist_summary ppf h =
  Fmt.pf ppf "n=%d sum=%d mean=%.1f min=%d p50=%d p90=%d p99=%d p999=%d max=%d" h.h_count
    h.h_sum h.h_mean h.h_min h.h_p50 h.h_p90 h.h_p99 h.h_p999 h.h_max

let pp_snapshot ppf s =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (k, v) -> Fmt.pf ppf "%-40s %d" k v))
    s.counters;
  List.iter (fun (k, v) -> Fmt.pf ppf "@,%-40s %d (gauge)" k v) s.gauges;
  List.iter (fun (k, h) -> Fmt.pf ppf "@,%-40s %a" k pp_hist_summary h) s.hists

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_of_snapshot s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    s.counters;
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    s.gauges;
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%.3f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d}"
           (json_escape k) h.h_count h.h_sum h.h_min h.h_max h.h_mean h.h_p50 h.h_p90 h.h_p99
           h.h_p999))
    s.hists;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ---- Prometheus text exposition ------------------------------------------ *)

(* Metric names map dots to underscores under a "bess_" prefix; labeled
   counters ("net.calls{1->2}", the Stats labeled-counter convention)
   become proper Prometheus labels [bess_net_calls{label="1->2"}].
   Histograms render as summaries (quantile series + _sum/_count). *)

let prom_name s =
  let buf = Buffer.create (String.length s + 5) in
  Buffer.add_string buf "bess_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    s;
  Buffer.contents buf

let split_label k =
  match String.index_opt k '{' with
  | Some i when String.length k > i + 1 && k.[String.length k - 1] = '}' ->
      (String.sub k 0 i, Some (String.sub k (i + 1) (String.length k - i - 2)))
  | _ -> (k, None)

let prom_escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_of_snapshot s =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 64 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (k, v) ->
      let base, label = split_label k in
      let name = prom_name base in
      type_line name "counter";
      match label with
      | None -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      | Some l ->
          Buffer.add_string buf
            (Printf.sprintf "%s{label=\"%s\"} %d\n" name (prom_escape_label l) v))
    s.counters;
  List.iter
    (fun (k, v) ->
      let name = prom_name k in
      type_line name "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    s.gauges;
  List.iter
    (fun (k, h) ->
      let name = prom_name k in
      type_line name "summary";
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf (Printf.sprintf "%s{quantile=\"%s\"} %d\n" name q v))
        [ ("0.5", h.h_p50); ("0.9", h.h_p90); ("0.99", h.h_p99); ("0.999", h.h_p999) ];
      (* Cumulative buckets from the power-of-two bounds, Prometheus
         histogram convention ([le] is inclusive; the bounds are
         [2^(i+1) - 1], so they are). A scrape-side histogram_quantile
         then agrees with the summary quantiles above. *)
      List.iter
        (fun (le, cum) ->
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name le cum))
        h.h_buckets;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.h_count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name h.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.h_count))
    s.hists;
  Buffer.contents buf
