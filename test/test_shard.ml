(* Shard router + presumed-abort 2PC coordinator: routing by the OID
   host field, cross-shard commit/abort over the wire, the participant
   no-vote path (unilateral abort, satellite of ISSUE 9), in-doubt
   transactions keeping their X locks across restart, idempotent
   duplicate decisions, and both coordinator-crash windows (undecided =>
   presumed abort; decided => re-drive). *)

module Fault = Bess_fault.Fault
module Net = Bess_net.Net
module Lock_mgr = Bess_lock.Lock_mgr
module Lock_mode = Bess_lock.Lock_mode
module Page_id = Bess_cache.Page_id
module Remote = Bess.Remote
module F = Bess.Fetcher
module Shard = Bess_shard.Shard
module Twopc = Bess_shard.Twopc

let i64 v =
  let b = Bytes.create 8 in
  Bess_util.Codec.set_i64 b 0 v;
  b

let slot_value sh ~shard ~rank ~offset =
  Bess_util.Codec.get_i64 (Shard.page_image sh shard rank) offset

let fresh f = Bess_obs.Registry.with_fresh (fun () -> Fun.protect ~finally:Fault.reset f)

(* ---- Routing ------------------------------------------------------------- *)

let test_routing () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:3 () in
  List.iter
    (fun host ->
      let oid = Bess.Oid.make ~host ~db:1 ~seg:2 ~slot:3 ~uniq:4 in
      let want = (host - 1) mod 3 in
      Alcotest.(check int) (Printf.sprintf "host %d shard" host) want (Shard.shard_of_oid sh oid);
      Alcotest.(check int)
        (Printf.sprintf "host %d endpoint" host)
        (want + 1)
        (Shard.endpoint_of_oid sh oid);
      Alcotest.(check int)
        (Printf.sprintf "host %d server" host)
        (want + 1)
        (Bess.Server.id (Shard.server_of_oid sh oid)))
    [ 1; 2; 3; 4; 5; 6 ]

(* ---- Commit and abort over the wire -------------------------------------- *)

let test_cross_shard_commit () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  let r = Shard.txn sh ~client:500 ~writes:[ (0, 0, 0, i64 11); (1, 0, 8, i64 22) ] () in
  Alcotest.(check bool) "committed" true (r = `Committed);
  Alcotest.(check int) "shard 0 slot" 11 (slot_value sh ~shard:0 ~rank:0 ~offset:0);
  Alcotest.(check int) "shard 1 slot" 22 (slot_value sh ~shard:1 ~rank:0 ~offset:8);
  Alcotest.(check int) "no locks held" 0 (Shard.locks_held sh);
  Alcotest.(check int) "decision acked and retired" 0 (Twopc.unresolved (Shard.coord sh));
  List.iter
    (fun (ep, tx) ->
      Alcotest.(check bool) "decision durable" true
        (Twopc.has_decision (Shard.coord sh) ~shard:ep ~txn:tx))
    (Shard.last_parts sh);
  (* The decide fan-out fed the 2pc critpath phase via its span kind. *)
  Alcotest.(check bool) "2pc phase exists" true
    (List.mem "2pc" (List.map Bess_obs.Critpath.phase_name Bess_obs.Critpath.phases))

let test_single_shard_commit () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  let r = Shard.txn sh ~client:501 ~writes:[ (1, 0, 16, i64 33) ] () in
  Alcotest.(check bool) "committed" true (r = `Committed);
  Alcotest.(check int) "value landed" 33 (slot_value sh ~shard:1 ~rank:0 ~offset:16);
  Alcotest.(check int) "untouched shard clean" 0 (slot_value sh ~shard:0 ~rank:0 ~offset:16);
  Alcotest.(check int) "no locks" 0 (Shard.locks_held sh)

(* Satellite: the Fetcher.f_prepare `Vote_no path. A participant that
   cannot vote yes (its updates are not X-covered) must abort the
   transaction unilaterally and release its locks; the coordinator logs
   nothing and aborts the yes-voter with a decide. *)
let test_vote_no_aborts_everywhere () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  let net = Shard.net sh in
  let fa = Remote.fetcher net ~client_id:601 ~server_id:(Shard.endpoint sh 0) in
  let fb = Remote.fetcher net ~client_id:601 ~server_id:(Shard.endpoint sh 1) in
  let pa = (Shard.pages sh 0).(0) and pb = (Shard.pages sh 1).(0) in
  let ta = fa.F.f_begin () in
  let bytes = fa.F.f_fetch_page ~txn:ta pa ~mode:Lock_mode.X in
  let ua : Bess.Server.update =
    { page = pa; offset = 0; before = Bytes.sub bytes 0 8; after = i64 91 }
  in
  let tb = fb.F.f_begin () in
  (* No lock fetched on shard 1: the prepare must vote no. *)
  let ub : Bess.Server.update =
    { page = pb; offset = 0; before = Bytes.make 8 '\000'; after = i64 92 }
  in
  Alcotest.(check bool) "A votes yes" true
    (fa.F.f_prepare ~txn:ta ~coordinator:77 [ ua ] = `Vote_yes);
  Alcotest.(check bool) "B votes no" true
    (fb.F.f_prepare ~txn:tb ~coordinator:77 [ ub ] = `Vote_no);
  (* The no-voter aborted unilaterally: transaction gone, locks free. *)
  Alcotest.(check int) "B holds no locks" 0
    (Lock_mgr.n_locks (Bess.Server.locks (Shard.server sh 1)));
  Alcotest.(check (list (pair int int))) "B has nothing prepared" []
    (Bess.Server.prepared_txns (Shard.server sh 1));
  Alcotest.(check int) "B counted the unilateral abort" 1
    (Bess_util.Stats.get (Bess.Server.stats (Shard.server sh 1)) "server.vote_no");
  (* Presumed abort: the coordinator logs nothing and decides abort at
     the yes-voter only. *)
  fa.F.f_decide ~txn:ta `Abort;
  Alcotest.(check int) "A holds no locks" 0
    (Lock_mgr.n_locks (Bess.Server.locks (Shard.server sh 0)));
  Alcotest.(check int) "no write survived on A" 0 (slot_value sh ~shard:0 ~rank:0 ~offset:0);
  Alcotest.(check int) "no write survived on B" 0 (slot_value sh ~shard:1 ~rank:0 ~offset:0)

(* A vote-no inside the full coordinator path: one shard's updates are
   made uncoverable by sabotaging the prepare with a foreign page. *)
let test_coordinator_abort_on_no_vote () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 ~pages_per_shard:2 () in
  let net = Shard.net sh in
  (* Build the parts by hand: begin + lock properly on shard 0, begin
     without locking on shard 1. *)
  let f0 = Remote.fetcher net ~client_id:602 ~server_id:(Shard.endpoint sh 0) in
  let f1 = Remote.fetcher net ~client_id:602 ~server_id:(Shard.endpoint sh 1) in
  let p0 = (Shard.pages sh 0).(0) and p1 = (Shard.pages sh 1).(0) in
  let t0 = f0.F.f_begin () in
  let b0 = f0.F.f_fetch_page ~txn:t0 p0 ~mode:Lock_mode.X in
  let u0 : Bess.Server.update =
    { page = p0; offset = 0; before = Bytes.sub b0 0 8; after = i64 81 }
  in
  let t1 = f1.F.f_begin () in
  let u1 : Bess.Server.update =
    { page = p1; offset = 0; before = Bytes.make 8 '\000'; after = i64 82 }
  in
  let r =
    Twopc.commit (Shard.coord sh)
      ~parts:[ (Shard.endpoint sh 0, t0, [ u0 ]); (Shard.endpoint sh 1, t1, [ u1 ]) ]
  in
  Alcotest.(check bool) "aborted" true (r = `Aborted);
  Alcotest.(check int) "no locks anywhere" 0 (Shard.locks_held sh);
  Alcotest.(check int) "nothing landed on shard 0" 0 (slot_value sh ~shard:0 ~rank:0 ~offset:0);
  Alcotest.(check int) "nothing landed on shard 1" 0 (slot_value sh ~shard:1 ~rank:0 ~offset:0);
  Alcotest.(check bool) "no decision logged (presumed abort)" false
    (Twopc.has_decision (Shard.coord sh) ~shard:(Shard.endpoint sh 0) ~txn:t0);
  Alcotest.(check int) "nothing pending" 0 (Twopc.unresolved (Shard.coord sh))

(* ---- In-doubt transactions keep their locks across restart --------------- *)

(* Satellite regression: a participant that crashes while prepared must
   come back holding its X locks (strict 2PL across the restart), so no
   one reads its undecided writes; resolution by coordinator query then
   releases them. *)
let test_in_doubt_keeps_locks_across_restart () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  (* Crash shard 1 at the moment both participants are prepared. *)
  let chaos () = Shard.crash_shard sh 1 in
  let r = Shard.txn ~chaos sh ~client:603 ~writes:[ (0, 0, 0, i64 71); (1, 0, 0, i64 72) ] () in
  (* The coordinator decided commit; shard 1 lost its volatile state. *)
  Alcotest.(check bool) "committed" true (r = `Committed);
  let outcome = Shard.recover_shard sh 1 in
  Alcotest.(check int) "one in-doubt transaction" 1 (List.length outcome.in_doubt);
  Alcotest.(check bool) "X locks reacquired" true
    (Bess_util.Stats.get (Bess.Server.stats (Shard.server sh 1)) "server.indoubt_relocks" >= 1);
  (* Another client must NOT get at the undecided write. *)
  let f = Remote.fetcher (Shard.net sh) ~client_id:604 ~server_id:(Shard.endpoint sh 1) in
  let t2 = f.F.f_begin () in
  let p1 = (Shard.pages sh 1).(0) in
  Alcotest.(check bool) "reader blocks on the in-doubt lock" true
    (match f.F.f_fetch_page ~txn:t2 p1 ~mode:Lock_mode.X with
    | exception F.Would_block -> true
    | _ -> false);
  (* Resolution: the decision is durable at the coordinator => commit. *)
  let resolved, unresolved = Shard.resolve_in_doubt sh in
  Alcotest.(check (pair int int)) "resolved by query" (1, 0) (resolved, unresolved);
  let bytes = f.F.f_fetch_page ~txn:t2 p1 ~mode:Lock_mode.X in
  Alcotest.(check int) "committed write visible after resolution" 72
    (Bess_util.Codec.get_i64 bytes 0);
  f.F.f_abort ~txn:t2;
  Alcotest.(check int) "no locks leaked" 0 (Shard.locks_held sh);
  Alcotest.(check int) "nothing in doubt" 0 (Shard.in_doubt sh)

(* ---- Idempotent decisions ------------------------------------------------ *)

let test_duplicate_decide_is_noop () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  let r = Shard.txn sh ~client:605 ~writes:[ (0, 0, 0, i64 61); (1, 0, 0, i64 62) ] () in
  Alcotest.(check bool) "committed" true (r = `Committed);
  let coord = Shard.coord sh in
  (* Re-deliver the commit decision with a fresh rid, as a re-drive
     after the dedup window aged would: the server must no-op and still
     acknowledge. *)
  List.iter
    (fun (ep, tx) ->
      match
        Net.call (Shard.net sh) ~src:(Twopc.id coord) ~dst:ep
          (Remote.Decide { rid = 987_654 + ep; txn = tx; commit = true })
      with
      | Remote.R_ok -> ()
      | _ -> Alcotest.fail "duplicate decide not acknowledged")
    (Shard.last_parts sh);
  Alcotest.(check bool) "duplicates counted as no-ops" true
    (Bess_util.Stats.get (Bess.Server.stats (Shard.server sh 0)) "server.decide_noops" >= 1);
  Alcotest.(check int) "values unchanged" 61 (slot_value sh ~shard:0 ~rank:0 ~offset:0);
  Alcotest.(check int) "no locks" 0 (Shard.locks_held sh)

(* ---- Coordinator crash windows ------------------------------------------- *)

let test_coordinator_crash_before_decision_presumes_abort () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  Fault.seed 11;
  Fault.configure "2pc.coord.crash_undecided" (Fault.Plan [ 1 ]);
  (match Shard.txn sh ~client:606 ~writes:[ (0, 0, 0, i64 51); (1, 0, 0, i64 52) ] () with
  | exception Twopc.Crashed -> ()
  | _ -> Alcotest.fail "expected a coordinator crash");
  Fault.reset ();
  Alcotest.(check bool) "coordinator down" false (Twopc.up (Shard.coord sh));
  Alcotest.(check int) "both participants prepared" 2 (Shard.in_doubt sh);
  Alcotest.(check int) "nothing to re-drive" 0 (Twopc.recover (Shard.coord sh));
  let resolved, unresolved = Shard.resolve_in_doubt sh in
  Alcotest.(check (pair int int)) "queries resolve both" (2, 0) (resolved, unresolved);
  Alcotest.(check int) "presumed abort on shard 0" 0 (slot_value sh ~shard:0 ~rank:0 ~offset:0);
  Alcotest.(check int) "presumed abort on shard 1" 0 (slot_value sh ~shard:1 ~rank:0 ~offset:0);
  Alcotest.(check int) "no locks leaked" 0 (Shard.locks_held sh);
  Alcotest.(check bool) "presumed aborts counted" true
    (Bess_util.Stats.get (Twopc.stats (Shard.coord sh)) "2pc.presumed_aborts" >= 2)

let test_coordinator_crash_after_decision_redrives () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  Fault.seed 12;
  Fault.configure "2pc.coord.crash_decided" (Fault.Plan [ 1 ]);
  (match Shard.txn sh ~client:607 ~writes:[ (0, 0, 0, i64 41); (1, 0, 0, i64 42) ] () with
  | exception Twopc.Crashed -> ()
  | _ -> Alcotest.fail "expected a coordinator crash");
  Fault.reset ();
  Alcotest.(check int) "both participants prepared" 2 (Shard.in_doubt sh);
  (* Recovery finds the forced decision and re-drives it to completion. *)
  Alcotest.(check int) "re-drive completes" 0 (Twopc.recover (Shard.coord sh));
  Alcotest.(check int) "commit landed on shard 0" 41 (slot_value sh ~shard:0 ~rank:0 ~offset:0);
  Alcotest.(check int) "commit landed on shard 1" 42 (slot_value sh ~shard:1 ~rank:0 ~offset:0);
  Alcotest.(check int) "nothing in doubt" 0 (Shard.in_doubt sh);
  Alcotest.(check int) "no locks leaked" 0 (Shard.locks_held sh);
  Alcotest.(check bool) "re-drives counted" true
    (Bess_util.Stats.get (Twopc.stats (Shard.coord sh)) "2pc.redrives" >= 1)

let test_query_unknown_txn_is_abort () =
  fresh @@ fun () ->
  let sh = Shard.create ~n:2 () in
  match
    Net.call (Shard.net sh) ~src:1 ~dst:(Twopc.id (Shard.coord sh))
      (Remote.Query_decision { rid = 0; shard = 1; txn = 424_242 })
  with
  | Remote.R_decision b -> Alcotest.(check bool) "absent decision means abort" false b
  | _ -> Alcotest.fail "protocol mismatch"

let suite =
  [
    Alcotest.test_case "oid host routing" `Quick test_routing;
    Alcotest.test_case "cross-shard commit" `Quick test_cross_shard_commit;
    Alcotest.test_case "single-shard commit" `Quick test_single_shard_commit;
    Alcotest.test_case "f_prepare vote-no aborts everywhere" `Quick
      test_vote_no_aborts_everywhere;
    Alcotest.test_case "coordinator aborts on a no vote" `Quick
      test_coordinator_abort_on_no_vote;
    Alcotest.test_case "in-doubt keeps X locks across restart" `Quick
      test_in_doubt_keeps_locks_across_restart;
    Alcotest.test_case "duplicate decide is a no-op" `Quick test_duplicate_decide_is_noop;
    Alcotest.test_case "coord crash undecided presumes abort" `Quick
      test_coordinator_crash_before_decision_presumes_abort;
    Alcotest.test_case "coord crash decided re-drives" `Quick
      test_coordinator_crash_after_decision_redrives;
    Alcotest.test_case "query unknown txn answers abort" `Quick test_query_unknown_txn_is_abort;
  ]
