(* Chaos torture harness for the fault plane: deterministic fault
   injection swept over many seeds against a multi-client remote commit
   workload. The durability contract under drops, duplicates, delays and
   disk faults:
   - every ACKED commit survives crash + recovery;
   - unacknowledged work leaves no phantoms: a slot only ever holds a
     value some transaction really wrote, never one older than the last
     acknowledged commit;
   - no locks leak once every client is done, aborted retries included;
   - any seed replays its exact fault schedule.
   Plus the exactly-once regression (a dropped Commit_begin reply and
   the client's blind retry yield ONE committed transaction and ONE
   durability ticket), deterministic per-site fault tests, the
   recover-twice no-op check and the torn-CRC reopen check. *)

module Fault = Bess_fault.Fault
module Net = Bess_net.Net
module Page_id = Bess_cache.Page_id
module Lock_mode = Bess_lock.Lock_mode
module Lock_mgr = Bess_lock.Lock_mgr
module Log = Bess_wal.Log
module Log_record = Bess_wal.Log_record
module Gc = Bess_wal.Group_commit
module F = Bess.Fetcher

let data_page seg =
  { Page_id.area = seg.Bess.Session.data_disk.Bess_storage.Seg_addr.area;
    page = seg.Bess.Session.data_disk.Bess_storage.Seg_addr.first_page }

(* A memory db with one committed page, served over the simulated wire. *)
let setup_remote ~db_id =
  let db = Bess.Db.create_memory ~db_id () in
  let server = Bess.Db.server db in
  let s = Bess.Db.session db in
  Bess.Session.begin_txn s;
  let seg = Bess.Session.create_segment s ~slotted_pages:1 ~data_pages:1 () in
  Bess.Session.commit s;
  Bess.Session.drop_all_cached s;
  let net = Bess.Remote.network () in
  Bess.Remote.serve net server;
  (db, server, net, data_page seg)

let i64 v =
  let b = Bytes.create 8 in
  Bess_util.Codec.set_i64 b 0 v;
  b

(* ---- The torture scenario ------------------------------------------------ *)

let nclients = 3
let nrounds = 4

(* One run: [nclients] remote clients take [nrounds] turns each writing a
   fresh value into their own 8-byte slot of a shared (page-locked) page,
   committing through the group-commit barrier. Ack classification:
   - barrier returned: ACKED, durable by contract;
   - barrier or commit raised: INDETERMINATE -- the commit point may have
     been passed (reply lost, force failed after the append), so the
     value may or may not survive. Prefix durability resolves earlier
     indeterminates the moment a later commit on the slot is acked.
   Returns the per-site fault schedules (the reproducibility witness). *)
let run_torture ~seed ~profile =
  Bess_obs.Registry.with_fresh @@ fun () ->
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let db, server, net, page = setup_remote ~db_id:900 in
  Bess.Server.set_group_policy server (Gc.Group_n 2);
  let fetchers =
    Array.init nclients (fun i ->
        Bess.Remote.fetcher net ~client_id:(2000 + i) ~server_id:(Bess.Db.db_id db))
  in
  Fault.seed seed;
  Fault.apply_profile (List.assoc profile Fault.profiles);
  let acked = Array.make nclients 0 in
  let maybes = Array.make nclients [] in
  for round = 1 to nrounds do
    for i = 0 to nclients - 1 do
      let f = fetchers.(i) in
      let v = (seed * 1000) + (i * 100) + round in
      match f.F.f_begin () with
      | exception _ -> () (* begin lost for good: nothing started *)
      | txn -> (
          match
            (* X-lock the page and read the current slot as the before
               image, exactly like a caching client ships updates. *)
            let bytes = f.F.f_fetch_page ~txn page ~mode:Lock_mode.X in
            ({ Bess.Server.page; offset = i * 8;
               before = Bytes.sub bytes (i * 8) 8; after = i64 v }
              : Bess.Server.update)
          with
          | exception _ -> ( try f.F.f_abort ~txn with _ -> ())
          | u -> (
              match f.F.f_commit_begin ~txn [ u ] with
              | barrier -> (
                  match barrier () with
                  | () ->
                      acked.(i) <- v;
                      maybes.(i) <- []
                  | exception _ ->
                      (* commit point passed; durability unconfirmed *)
                      maybes.(i) <- v :: maybes.(i))
              | exception _ ->
                  (* maybe before, maybe after the commit point: the
                     abort is idempotent and rolls back iff it was
                     before, so the value stays merely possible *)
                  maybes.(i) <- v :: maybes.(i);
                  (try f.F.f_abort ~txn with _ -> ())))
    done
  done;
  let leaked = Lock_mgr.n_locks (Bess.Server.locks server) in
  if leaked <> 0 then
    Alcotest.failf "seed %d (%s): %d locks leaked after all clients finished" seed profile
      leaked;
  let schedules =
    List.map (fun (site, _) -> (site, Fault.schedule site)) (Fault.configured ())
  in
  (* Disarm before the crash: the invariant is about what the faulty
     workload left durable, not about faults during recovery itself. *)
  Fault.reset ();
  Bess.Server.crash server;
  ignore (Bess.Server.recover server);
  let bytes = Bess.Server.read_page server page in
  for i = 0 to nclients - 1 do
    let v = Bess_util.Codec.get_i64 bytes (i * 8) in
    let allowed = acked.(i) :: maybes.(i) in
    if not (List.mem v allowed) then
      Alcotest.failf "seed %d (%s): slot %d recovered %d, allowed {%s} (last ack %d)" seed
        profile i v
        (String.concat "," (List.map string_of_int allowed))
        acked.(i)
  done;
  schedules

(* 200 distinct seeds, alternating a network-only and a network+disk
   profile. The fire count guards against the sweep silently testing
   nothing (a profile rename, a seed that never fires). *)
let test_torture_sweep () =
  let total_fires = ref 0 in
  for seed = 1 to 200 do
    let profile = if seed mod 2 = 0 then "chaos" else "flaky-net" in
    let schedules = run_torture ~seed ~profile in
    List.iter (fun (_, ords) -> total_fires := !total_fires + List.length ords) schedules
  done;
  Alcotest.(check bool) "faults actually fired across the sweep" true (!total_fires > 100)

let test_schedule_reproducible () =
  List.iter
    (fun seed ->
      let a = run_torture ~seed ~profile:"chaos" in
      let b = run_torture ~seed ~profile:"chaos" in
      if a <> b then Alcotest.failf "seed %d: fault schedule not reproducible" seed;
      Alcotest.(check bool) "schedules recorded for every site" true (List.length a > 0))
    [ 1; 7; 42; 137; 9999 ]

let prop_torture =
  QCheck.Test.make ~name:"torture invariants hold for arbitrary fault seeds" ~count:50
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, net_only) ->
      ignore
        (run_torture ~seed:(seed + 1) ~profile:(if net_only then "flaky-net" else "chaos"));
      true)

(* ---- Exactly-once: dropped Commit_begin reply ---------------------------- *)

let test_dropped_commit_reply_exactly_once () =
  Bess_obs.Registry.with_fresh @@ fun () ->
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let db, server, net, page = setup_remote ~db_id:901 in
  Bess.Server.set_group_policy server (Gc.Group_n 2);
  let f = Bess.Remote.fetcher net ~client_id:2100 ~server_id:(Bess.Db.db_id db) in
  let log = Bess.Store.log (Bess.Server.store server) in
  let tickets = Bess_util.Stats.histogram (Log.stats log) "wal.group.commits_per_force" in
  let tickets0 = Bess_util.Histogram.sum tickets in
  let forces0 = Bess_util.Histogram.count tickets in
  let commits0 = Bess_util.Stats.get (Bess.Server.stats server) "server.commits" in
  Fault.seed 7;
  (* Calls: 1 = Begin, 2 = Fetch_page, 3 = Commit_begin. Drop exactly the
     Commit_begin REPLY: the handler ran, the ticket exists, the client
     cannot know -- its retry must be deduplicated into a replay. *)
  Fault.configure "net.drop_reply" (Fault.Plan [ 3 ]);
  let txn = f.F.f_begin () in
  let bytes = f.F.f_fetch_page ~txn page ~mode:Lock_mode.X in
  let u : Bess.Server.update =
    { page; offset = 0; before = Bytes.sub bytes 0 8; after = i64 4242 }
  in
  let barrier = f.F.f_commit_begin ~txn [ u ] in
  barrier ();
  Alcotest.(check (list int)) "the planned drop happened" [ 3 ]
    (Fault.schedule "net.drop_reply");
  Alcotest.(check int) "client retried once" 1
    (Bess_util.Stats.get (Net.stats net) "net.client_retries");
  Alcotest.(check int) "server replayed the duplicate" 1
    (Bess_util.Stats.get (Bess.Server.stats server) "server.dup_replays");
  Alcotest.(check int) "exactly one committed transaction" 1
    (Bess_util.Stats.get (Bess.Server.stats server) "server.commits" - commits0);
  Alcotest.(check int) "exactly one durability ticket" 1
    (Bess_util.Histogram.sum tickets - tickets0);
  Alcotest.(check int) "released by exactly one force" 1
    (Bess_util.Histogram.count tickets - forces0);
  Fault.reset ();
  Bess.Server.crash server;
  ignore (Bess.Server.recover server);
  Alcotest.(check int) "the acked value is durable" 4242
    (Bess_util.Codec.get_i64 (Bess.Server.read_page server page) 0)

(* ---- Zero cost when off -------------------------------------------------- *)

(* The same workload with (a) no site configured, (b) every chaos site
   explicitly Never, (c) sites armed with plans that never reach their
   ordinal, must produce bit-identical workload counters: checks may be
   counted, but the traffic, clock and force accounting cannot move. *)
let test_disarmed_is_free () =
  let run arm =
    Bess_obs.Registry.with_fresh @@ fun () ->
    Fun.protect ~finally:Fault.reset @@ fun () ->
    let db, server, net, page = setup_remote ~db_id:903 in
    let f = Bess.Remote.fetcher net ~client_id:2200 ~server_id:(Bess.Db.db_id db) in
    arm ();
    let txn = f.F.f_begin () in
    let bytes = f.F.f_fetch_page ~txn page ~mode:Lock_mode.X in
    f.F.f_commit ~txn
      [ { Bess.Server.page; offset = 0; before = Bytes.sub bytes 0 8; after = i64 31337 } ];
    let log = Bess.Store.log (Bess.Server.store server) in
    ( Net.messages net,
      Net.bytes net,
      Net.clock_ns net,
      Bess_util.Stats.get (Log.stats log) "log.forces",
      Bess_util.Stats.get (Bess.Server.stats server) "server.commits" )
  in
  let off = run (fun () -> ()) in
  let never =
    run (fun () ->
        Fault.seed 1;
        Fault.apply_profile
          (List.map (fun (s, _) -> (s, Fault.Never)) (List.assoc "chaos" Fault.profiles)))
  in
  let armed_cold =
    run (fun () ->
        Fault.seed 1;
        Fault.apply_profile
          (List.map (fun (s, _) -> (s, Fault.Plan [ 1_000_000 ])) (List.assoc "chaos" Fault.profiles)))
  in
  Alcotest.(check bool) "Never everywhere is bit-identical" true (off = never);
  Alcotest.(check bool) "armed-but-never-firing is bit-identical" true (off = armed_cold)

(* ---- Deterministic per-site behaviour ------------------------------------ *)

let test_net_fault_sites () =
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let net =
    Net.create ~per_message_ns:100 ~per_byte_ns:1 ~req_cost:String.length
      ~resp_cost:String.length ()
  in
  let handled = ref 0 in
  Net.register net ~id:1 (fun ~src:_ req ->
      incr handled;
      String.uppercase_ascii req);
  Fault.seed 3;
  (* Dropped request: accounted on the wire, handler never runs. *)
  Fault.configure "net.drop_request" (Fault.Plan [ 1 ]);
  (match Net.call net ~src:9 ~dst:1 "abc" with
  | _ -> Alcotest.fail "dropped request must time out"
  | exception Net.Timeout 1 -> ());
  Alcotest.(check int) "handler never ran" 0 !handled;
  Alcotest.(check int) "request still crossed the wire" 1 (Net.messages net);
  Alcotest.(check int) "drop counted" 1
    (Bess_util.Stats.get (Net.stats net) "net.dropped_requests");
  (* Duplicate delivery: the handler really runs twice. *)
  Fault.configure "net.drop_request" Fault.Never;
  Fault.configure "net.dup" (Fault.Plan [ 1 ]);
  Alcotest.(check string) "duplicated call still answers" "ABC" (Net.call net ~src:9 ~dst:1 "abc");
  Alcotest.(check int) "handler ran twice" 2 !handled;
  Alcotest.(check int) "two requests and one reply accounted" 4 (Net.messages net);
  Alcotest.(check int) "duplicate counted" 1
    (Bess_util.Stats.get (Net.stats net) "net.duplicates");
  (* Latency spike: time passes, nothing is lost. *)
  Fault.configure "net.dup" Fault.Never;
  Fault.configure "net.delay" (Fault.Plan [ 1 ]);
  let t0 = Net.clock_ns net in
  Alcotest.(check string) "delayed call answers" "XY" (Net.call net ~src:9 ~dst:1 "xy");
  Alcotest.(check bool) "spike visible on the clock" true (Net.clock_ns net - t0 > 204);
  Alcotest.(check int) "delay counted" 1 (Bess_util.Stats.get (Net.stats net) "net.delays")

let test_wal_force_faults () =
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let log = Log.create () in
  ignore (Log.append log { prev_lsn = 0; body = Commit { txn = 1 } });
  Fault.seed 11;
  (* Torn write: the first attempt lands a partial suffix, the retry
     rewrites it; the caller still never hears success before the bytes
     are really down. *)
  Fault.configure "wal.force.torn" (Fault.Plan [ 1 ]);
  Log.flush log ();
  Alcotest.(check int) "torn attempt counted" 1
    (Bess_util.Stats.get (Log.stats log) "log.torn_forces");
  Alcotest.(check int) "retry completed one force" 1
    (Bess_util.Stats.get (Log.stats log) "log.forces");
  Alcotest.(check bool) "durable horizon reached" true
    (Log.flushed_lsn log >= Log.last_lsn log);
  (* Persistent I/O error: three consecutive failures exhaust the bounded
     retries and surface as Injected -- never as a silent success. *)
  Fault.configure "wal.force.torn" Fault.Never;
  Fault.configure "wal.force.eio" (Fault.Plan [ 1; 2; 3 ]);
  ignore (Log.append log { prev_lsn = 0; body = Commit { txn = 2 } });
  (match Log.flush log () with
  | () -> Alcotest.fail "persistent EIO must raise"
  | exception Fault.Injected _ -> ());
  Alcotest.(check int) "three attempts failed" 3
    (Bess_util.Stats.get (Log.stats log) "log.force_errors");
  Alcotest.(check bool) "tail not durable after the failure" true
    (Log.flushed_lsn log < Log.last_lsn log);
  (* The plan is exhausted: the next force catches the tail up. *)
  Log.flush log ();
  Alcotest.(check bool) "suffix flushed once the fault cleared" true
    (Log.flushed_lsn log >= Log.last_lsn log)

(* ---- Recover twice is a no-op -------------------------------------------- *)

let test_recover_twice_noop () =
  let db = Bess.Db.create_memory ~db_id:902 () in
  let server = Bess.Db.server db in
  let s = Bess.Db.session db in
  Bess.Session.begin_txn s;
  let seg = Bess.Session.create_segment s ~slotted_pages:1 ~data_pages:1 () in
  Bess.Session.commit s;
  Bess.Session.drop_all_cached s;
  let page = data_page seg in
  (* One committed write and one left in flight, then crash. *)
  let t1 = Bess.Server.begin_txn server ~client:1 in
  Bess.Server.update_inplace server ~txn:t1 page ~offset:0 (i64 77);
  Bess.Server.commit_inplace server ~txn:t1;
  let t2 = Bess.Server.begin_txn server ~client:1 in
  Bess.Server.update_inplace server ~txn:t2 page ~offset:8 (i64 88);
  Bess.Server.crash server;
  ignore (Bess.Server.recover server);
  let log = Bess.Store.log (Bess.Server.store server) in
  let snapshot = Bess.Server.read_page server page in
  let records = Log.fold log (fun n _ _ -> n + 1) 0 in
  let forces = Bess_util.Stats.get (Log.stats log) "log.forces" in
  (* Recover again WITHOUT an intervening crash: strictly nothing to do --
     no redo, no undo, no fresh log records, no extra force. *)
  let o2 = Bess.Server.recover server in
  Alcotest.(check int) "no redo second time" 0 o2.Bess_wal.Recovery.redone;
  Alcotest.(check int) "no undo second time" 0 o2.Bess_wal.Recovery.undone;
  Alcotest.(check (list int)) "no losers second time" [] o2.Bess_wal.Recovery.losers;
  Alcotest.(check int) "no new log records" records (Log.fold log (fun n _ _ -> n + 1) 0);
  Alcotest.(check int) "no extra forces" forces
    (Bess_util.Stats.get (Log.stats log) "log.forces");
  Alcotest.(check bytes) "page image stable" snapshot (Bess.Server.read_page server page);
  Alcotest.(check int) "committed value still there" 77
    (Bess_util.Codec.get_i64 (Bess.Server.read_page server page) 0);
  Alcotest.(check int) "loser still undone" 0
    (Bess_util.Codec.get_i64 (Bess.Server.read_page server page) 8)

(* ---- Torn tail by CRC corruption on disk --------------------------------- *)

let test_torn_crc_reopen () =
  let path = Filename.temp_file "bess_chaos_crc" ".log" in
  let log = Log.create ~path () in
  let r1 : Log_record.t = { prev_lsn = 0; body = Commit { txn = 0x0A0B0C0D } } in
  ignore (Log.append log r1);
  ignore (Log.append log { prev_lsn = 0; body = Commit { txn = 0x0A0B0C0E } });
  Log.flush log ();
  Log.close log;
  (* Flip one CRC byte of the LAST record directly on disk: same length,
     valid header, corrupt checksum -- the scan must stop at the valid
     prefix, not raise. Framing: [total_len u32][crc u32][payload], so
     the second record's CRC lives at its offset + 4. *)
  let off = Bytes.length (Log_record.encode r1) in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd (off + 4) Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5A));
  ignore (Unix.lseek fd (off + 4) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let log1 = Log.open_existing path in
  Alcotest.(check int) "stops at the valid prefix" 1 (Log.fold log1 (fun n _ _ -> n + 1) 0);
  Alcotest.(check int) "valid prefix is the first record" off (Log.size_bytes log1);
  Alcotest.(check int) "truncation counted" 1
    (Bess_util.Stats.get (Log.stats log1) "log.reopen_truncations");
  Alcotest.(check int) "file truncated on disk" off (Unix.stat path).Unix.st_size;
  (* Life goes on: an append after the truncation survives a restart. *)
  ignore (Log.append log1 { prev_lsn = 0; body = Commit { txn = 3 } });
  Log.flush log1 ();
  Log.close log1;
  let log2 = Log.open_existing path in
  Alcotest.(check int) "no phantom after reopen" 2 (Log.fold log2 (fun n _ _ -> n + 1) 0);
  Log.close log2;
  Sys.remove path

(* ---- Policy / profile parsing -------------------------------------------- *)

let test_policy_parsing () =
  let ok s p =
    match Fault.policy_of_string s with
    | Ok p' -> Alcotest.(check string) s (Fault.policy_to_string p) (Fault.policy_to_string p')
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  ok "never" Fault.Never;
  ok "every:50" (Fault.Every_n 50);
  ok "prob:0.05" (Fault.Prob 0.05);
  ok "plan:3+17+40" (Fault.Plan [ 3; 17; 40 ]);
  (match Fault.policy_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage policy accepted");
  (match Fault.profile_of_string "flaky-net" with
  | Ok sites -> Alcotest.(check bool) "named profile resolves" true (List.length sites > 0)
  | Error e -> Alcotest.failf "flaky-net rejected: %s" e);
  (match Fault.profile_of_string "net.dup=every:9,wal.force.eio=prob:0.5" with
  | Ok [ ("net.dup", Fault.Every_n 9); ("wal.force.eio", Fault.Prob 0.5) ] -> ()
  | Ok _ -> Alcotest.fail "explicit profile parsed wrong"
  | Error e -> Alcotest.failf "explicit profile rejected: %s" e);
  (match Fault.profile_of_string "net.dup-every:9" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed entry accepted")

let suite =
  [
    Alcotest.test_case "policy_parsing" `Quick test_policy_parsing;
    Alcotest.test_case "net_fault_sites" `Quick test_net_fault_sites;
    Alcotest.test_case "wal_force_faults" `Quick test_wal_force_faults;
    Alcotest.test_case "disarmed_is_free" `Quick test_disarmed_is_free;
    Alcotest.test_case "dropped_commit_reply_exactly_once" `Quick
      test_dropped_commit_reply_exactly_once;
    Alcotest.test_case "recover_twice_noop" `Quick test_recover_twice_noop;
    Alcotest.test_case "torn_crc_reopen" `Quick test_torn_crc_reopen;
    Alcotest.test_case "torture_sweep_200_seeds" `Quick test_torture_sweep;
    Alcotest.test_case "schedule_reproducible" `Quick test_schedule_reproducible;
    QCheck_alcotest.to_alcotest prop_torture;
  ]
