(* The temporal half of the observability plane: windowed Series
   sampling on the simulated clock, the JSON reader, and the black-box
   flight recorder's dump -> load -> replay round trip. *)

module Registry = Bess_obs.Registry
module Series = Bess_obs.Series
module Span = Bess_obs.Span
module Flightrec = Bess_obs.Flightrec
module Json = Bess_obs.Json
module Stats = Bess_util.Stats
module Fault = Bess_fault.Fault

let with_series series f =
  Series.install (Some series);
  Fun.protect ~finally:(fun () -> Series.install None) f

let test_windowed_sampling () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let g = ref 2 in
  Registry.register_gauge ~registry:reg "wal" "pending" (fun () -> !g);
  Stats.add st "forces" 10;
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  with_series series (fun () ->
      Stats.incr st "forces";
      Span.advance_ns 1000;
      (* window 0 closes: delta 1 *)
      Stats.add st "forces" 3;
      g := 7;
      Span.advance_ns 400;
      Span.advance_ns 600;
      (* window 1 closes: delta 3 *)
      Span.advance_ns 1000 (* window 2 closes: untouched, delta 0 *));
  match Series.to_list series with
  | [ w0; w1; w2 ] ->
      Alcotest.(check int) "indices" 0 w0.Series.w_index;
      Alcotest.(check int) "w1 index" 1 w1.Series.w_index;
      Alcotest.(check (option int)) "w0 delta" (Some 1) (Series.sample_delta w0 "wal.forces");
      Alcotest.(check (option int)) "w1 delta" (Some 3) (Series.sample_delta w1 "wal.forces");
      Alcotest.(check (option int))
        "quiet window keeps the zero (untouched /= unregistered)" (Some 0)
        (Series.sample_delta w2 "wal.forces");
      Alcotest.(check (option int)) "gauge at w1 end" (Some 7) (Series.sample_gauge w1 "wal.pending");
      Alcotest.(check int) "w1 spans its true width" 1000
        (w1.Series.w_end_ns - w1.Series.w_start_ns);
      (* 3 counts over 1000 simulated ns = 3e6/s. *)
      (match Series.sample_rate w1 "wal.forces" with
      | Some r -> Alcotest.(check bool) "rate over true width" true (abs_float (r -. 3e6) < 1.0)
      | None -> Alcotest.fail "rate missing")
  | l -> Alcotest.fail (Printf.sprintf "expected 3 windows, got %d" (List.length l))

let test_large_jump_one_window () =
  (* One big clock jump closes ONE window spanning the jump — no run of
     fabricated empty windows — and the rate divides by the real width. *)
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  with_series series (fun () ->
      Stats.add st "forces" 4;
      Span.advance_ns 8000);
  match Series.to_list series with
  | [ w ] ->
      Alcotest.(check int) "true width recorded" 8000 (w.Series.w_end_ns - w.Series.w_start_ns);
      (match Series.sample_rate w "wal.forces" with
      | Some r -> Alcotest.(check bool) "rate uses real width" true (abs_float (r -. 5e5) < 1.0)
      | None -> Alcotest.fail "rate missing")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 window, got %d" (List.length l))

let test_quiet_window_between_active () =
  (* A quiet window BETWEEN active ones must still appear, zeros kept —
     the gap in a burst pattern is data, not absence of it. *)
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  with_series series (fun () ->
      Stats.incr st "forces";
      Span.advance_ns 1000;
      Span.advance_ns 1000 (* nothing moved in here *);
      Stats.add st "forces" 2;
      Span.advance_ns 1000);
  match Series.to_list series with
  | [ w0; w1; w2 ] ->
      Alcotest.(check (option int)) "burst before the gap" (Some 1)
        (Series.sample_delta w0 "wal.forces");
      Alcotest.(check (option int)) "quiet middle window records zero" (Some 0)
        (Series.sample_delta w1 "wal.forces");
      Alcotest.(check int) "quiet window has real width" 1000
        (w1.Series.w_end_ns - w1.Series.w_start_ns);
      Alcotest.(check (option int)) "burst after the gap" (Some 2)
        (Series.sample_delta w2 "wal.forces")
  | l -> Alcotest.fail (Printf.sprintf "expected 3 windows, got %d" (List.length l))

let test_uninstall_reinstall_midrun () =
  (* Uninstalling mid-run stops sampling; reinstalling rebases both the
     window clock and the counter baseline, so activity from the dark
     period neither fabricates windows nor leaks into the next delta. *)
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  Series.install (Some series);
  Fun.protect ~finally:(fun () -> Series.install None) (fun () ->
      Stats.incr st "forces";
      Span.advance_ns 1000;
      Series.install None;
      Stats.add st "forces" 5;
      Span.advance_ns 10_000 (* unobserved: no series installed *);
      Alcotest.(check int) "dark period recorded nothing" 1 (Series.windows series);
      Series.install (Some series);
      Stats.add st "forces" 2;
      Span.advance_ns 1000);
  match Series.to_list series with
  | [ w0; w1 ] ->
      Alcotest.(check (option int)) "pre-gap delta" (Some 1) (Series.sample_delta w0 "wal.forces");
      Alcotest.(check int) "window numbering continues" 1 w1.Series.w_index;
      Alcotest.(check (option int)) "dark-period counts rebased away, not replayed" (Some 2)
        (Series.sample_delta w1 "wal.forces");
      Alcotest.(check int) "reinstalled window spans only its own width" 1000
        (w1.Series.w_end_ns - w1.Series.w_start_ns)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 windows, got %d" (List.length l))

let test_gauge_starts_raising () =
  (* A gauge whose substrate dies after registration (closure starts
     raising) silently drops out of later windows instead of killing the
     sampler. *)
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let alive = ref true in
  Registry.register_gauge ~registry:reg "wal" "pending" (fun () ->
      if !alive then 9 else failwith "substrate gone");
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  with_series series (fun () ->
      Stats.incr st "forces";
      Span.advance_ns 1000;
      alive := false;
      Stats.incr st "forces";
      Span.advance_ns 1000);
  match Series.to_list series with
  | [ w0; w1 ] ->
      Alcotest.(check (option int)) "gauge sampled while healthy" (Some 9)
        (Series.sample_gauge w0 "wal.pending");
      Alcotest.(check (option int)) "raising gauge dropped from the window" None
        (Series.sample_gauge w1 "wal.pending");
      Alcotest.(check (option int)) "counters unaffected by the bad gauge" (Some 1)
        (Series.sample_delta w1 "wal.forces")
  | l -> Alcotest.fail (Printf.sprintf "expected 2 windows, got %d" (List.length l))

let test_ring_bound_and_flush () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  let series = Series.create ~capacity:2 ~window_ns:1000 ~registry:reg () in
  with_series series (fun () ->
      for i = 1 to 5 do
        Stats.add st "forces" i;
        Span.advance_ns 1000
      done;
      (* A partial window: only flush records it. *)
      Stats.incr st "forces";
      Span.advance_ns 1;
      Alcotest.(check int) "partial window still open" 5
        (Series.windows series + Series.dropped series);
      Series.flush series);
  Alcotest.(check int) "ring bounded" 2 (Series.windows series);
  Alcotest.(check int) "evictions counted" 4 (Series.dropped series);
  match Series.last series with
  | Some w ->
      Alcotest.(check (option int)) "flushed tail carries the delta" (Some 1)
        (Series.sample_delta w "wal.forces");
      Alcotest.(check int) "flushed window has its real (short) width" 1
        (w.Series.w_end_ns - w.Series.w_start_ns)
  | None -> Alcotest.fail "no last window"

let test_uninstalled_is_inert () =
  Alcotest.(check bool) "nothing installed" true (Series.installed () = None);
  let reg = Registry.create () in
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  (* Clock ticks without an installed series must not sample. *)
  Span.advance_ns 5000;
  Alcotest.(check int) "no windows recorded" 0 (Series.windows series);
  (* And json_of on an empty ring is still a valid document. *)
  match Json.parse (Series.json_of series) with
  | Ok j -> Alcotest.(check (list Alcotest.reject)) "no samples" [] (Json.get_list j "samples")
  | Error e -> Alcotest.failf "bad series json: %s" e

let test_series_json_roundtrip () =
  let reg = Registry.create () in
  let st = Stats.create () in
  Registry.register_stats ~registry:reg "wal" st;
  Registry.register_gauge ~registry:reg "wal" "pending" (fun () -> 3);
  let series = Series.create ~window_ns:1000 ~registry:reg () in
  with_series series (fun () ->
      Stats.add st "forces" 2;
      Span.advance_ns 1500);
  match Json.parse (Series.json_of series) with
  | Error e -> Alcotest.failf "unparseable series json: %s" e
  | Ok j -> (
      Alcotest.(check int) "window_ns round-trips" 1000 (Json.get_int j "window_ns");
      match Json.get_list j "samples" with
      | [ s ] ->
          let counters = Option.get (Json.member "counters" s) in
          Alcotest.(check int) "delta round-trips" 2 (Json.get_int counters "wal.forces");
          let gauges = Option.get (Json.member "gauges" s) in
          Alcotest.(check int) "gauge round-trips" 3 (Json.get_int gauges "wal.pending")
      | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l))

(* ---- flight recorder ---- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_flightrec_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "bess_flightrec_test" in
  rm_rf dir;
  let coll = Span.create () in
  Span.install (Some coll);
  Flightrec.arm ~dir ();
  Fun.protect
    ~finally:(fun () ->
      Flightrec.disarm ();
      Span.install None;
      Fault.reset ();
      rm_rf dir)
    (fun () ->
      Fault.seed 11;
      Fault.configure "wal.force.eio" (Fault.Plan [ 2 ]);
      Span.with_span ~kind:"wal.force" (fun () ->
          ignore (Fault.fire "wal.force.eio");
          Span.advance_ns 100;
          ignore (Fault.fire "wal.force.eio") (* ordinal 2: fires mid-span *);
          Span.advance_ns 50);
      Span.advance_ns 10;
      Span.with_span ~kind:"wal.force" (fun () -> Span.advance_ns 25);
      Alcotest.(check bool) "armed" true (Flightrec.armed ());
      let path =
        match Flightrec.dump ~reason:"chaos failure" () with
        | Some p -> p
        | None -> Alcotest.fail "dump returned no path while armed"
      in
      Alcotest.(check bool) "reason slugged into the file name" true
        (Filename.check_suffix path "-chaos-failure.json");
      match Flightrec.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok j ->
          Alcotest.(check string) "reason round-trips" "chaos failure"
            (Json.get_string j "reason");
          let items = Flightrec.replay j in
          let faults =
            List.filter_map
              (function
                | Flightrec.Fault_item { site; ordinal; ts_ns } -> Some (site, ordinal, ts_ns)
                | Flightrec.Span_item _ -> None)
              items
          in
          Alcotest.(check (list (pair string int)))
            "the planned firing replays"
            [ ("wal.force.eio", 2) ]
            (List.map (fun (s, o, _) -> (s, o)) faults);
          (* The firing interleaves INSIDE the first span: after that
             span's start, before the second span's. *)
          let span_starts =
            List.filter_map
              (function
                | Flightrec.Span_item { kind; start_ns; _ } -> Some (kind, start_ns)
                | Flightrec.Fault_item _ -> None)
              items
          in
          (match (span_starts, faults) with
          | [ (_, s0); (_, s1) ], [ (_, _, ft) ] ->
              Alcotest.(check int) "stamped 100ns into the first span" 100 (ft - s0);
              Alcotest.(check bool) "fault before second span start" true (ft < s1)
          | _ -> Alcotest.failf "expected 2 spans + 1 fault, got %d items" (List.length items));
          (* Ordering: replay is sorted by timestamp. *)
          let ts = List.map Flightrec.item_ts items in
          Alcotest.(check (list int)) "timeline sorted" (List.sort compare ts) ts)

let test_flightrec_disarmed_noop () =
  Alcotest.(check bool) "disarmed by default" false (Flightrec.armed ());
  Alcotest.(check (option string)) "dump is a no-op" None
    (Flightrec.dump ~reason:"nope" ())

(* ---- end to end: substrate gauges ---- *)

let test_substrate_gauges_end_to_end () =
  Registry.with_fresh (fun () ->
      let db = Bess.Db.create_memory ~db_id:77 () in
      let s = Bess.Db.session db in
      Bess.Session.begin_txn s;
      let seg = Bess.Session.create_segment s ~slotted_pages:1 ~data_pages:1 () in
      ignore seg;
      Bess.Session.commit s;
      let gauges = Registry.gauges (Registry.snapshot ()) in
      let expect name =
        Alcotest.(check bool)
          (Printf.sprintf "substrate gauge %S registered" name)
          true (List.mem_assoc name gauges)
      in
      List.iter expect
        [
          "cache.resident_pages"; "cache.dirty_pages"; "lock.table_size"; "lock.waiters";
          "wal.unflushed_bytes"; "wal.pending_tickets"; "wal.bytes_since_checkpoint";
          "vmem.mapped_pages"; "server.active_txns"; "session.cached_segments";
        ];
      Alcotest.(check bool) "committed pages resident in the cache" true
        (List.assoc "cache.resident_pages" gauges > 0);
      Alcotest.(check int) "no transaction in flight" 0
        (List.assoc "server.active_txns" gauges))

let suite =
  [
    Alcotest.test_case "windowed_sampling" `Quick test_windowed_sampling;
    Alcotest.test_case "large_jump_one_window" `Quick test_large_jump_one_window;
    Alcotest.test_case "quiet_window_between_active" `Quick test_quiet_window_between_active;
    Alcotest.test_case "uninstall_reinstall_midrun" `Quick test_uninstall_reinstall_midrun;
    Alcotest.test_case "gauge_starts_raising" `Quick test_gauge_starts_raising;
    Alcotest.test_case "ring_bound_and_flush" `Quick test_ring_bound_and_flush;
    Alcotest.test_case "uninstalled_is_inert" `Quick test_uninstalled_is_inert;
    Alcotest.test_case "series_json_roundtrip" `Quick test_series_json_roundtrip;
    Alcotest.test_case "flightrec_roundtrip" `Quick test_flightrec_roundtrip;
    Alcotest.test_case "flightrec_disarmed_noop" `Quick test_flightrec_disarmed_noop;
    Alcotest.test_case "substrate_gauges_end_to_end" `Quick test_substrate_gauges_end_to_end;
  ]
