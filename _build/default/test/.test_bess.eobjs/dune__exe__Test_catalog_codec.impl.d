test/test_catalog_codec.ml: Alcotest Bess Bess_storage Bytes Char List Option QCheck QCheck_alcotest String
