lib/core/event.ml: Bess_util Fmt Hashtbl List
