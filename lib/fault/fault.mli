(** Process-wide deterministic fault injection.

    The robustness analogue of the observability registry: named
    injection sites at the boundaries failures actually cross (WAL
    force, page flush, network delivery) consult this module to decide
    whether to misbehave. Every decision comes from a per-site
    splitmix64 stream derived from one master seed, so a fault schedule
    is exactly reproducible: same seed + same per-site check sequence =
    same faults, regardless of how other sites interleave.

    When every site is [Never] (the default), [fire] is a single load
    and branch — workloads with faults disabled are bit-identical to a
    build without this module. *)

(** Per-site firing policy.

    - [Never]: the site is disarmed (default for unconfigured sites).
    - [Every_n n]: fire on every [n]-th check (the [n]-th, [2n]-th, ...).
    - [Prob p]: fire each check independently with probability [p],
      drawn from the site's own deterministic stream.
    - [Plan ordinals]: fire exactly on the listed check ordinals
      (1-based) — precise schedules for regression tests. *)
type policy = Never | Every_n of int | Prob of float | Plan of int list

(** Raised by a site whose bounded internal retries are exhausted
    (e.g. a log force failing its third consecutive attempt). *)
exception Injected of string

(** [seed s] sets the master seed: every site's stream is re-derived
    from [(s, site name)] and all check counters and schedules reset.
    Policies are kept. *)
val seed : int -> unit

(** [configure site policy] arms (or disarms) one site. *)
val configure : string -> policy -> unit

(** [apply_profile profile] configures every [(site, policy)] pair. *)
val apply_profile : (string * policy) list -> unit

(** Disarm everything: all sites dropped, counters and schedules
    cleared, master seed kept. *)
val reset : unit -> unit

(** True when at least one site has a non-[Never] policy. *)
val armed : unit -> bool

(** [fire site] is the injection decision for one check at [site].
    Counts the check and, when the policy says so, the fire (visible as
    [fault.checks{site}] / [fault.fires{site}] in the obs registry).
    Always [false] when nothing is armed or [site] is unconfigured. *)
val fire : string -> bool

(** [draw site ~bound] is a deterministic value in [0, bound) from the
    site's stream — fault magnitudes (tear sizes, delay spikes) that
    stay on the reproducible schedule. 0 if the site is unconfigured. *)
val draw : string -> bound:int -> int

(** Check ordinals (1-based, ascending) at which [site] has fired since
    the last [seed]/[reset] — the reproducibility witness. *)
val schedule : string -> int list

(** Recent firings across all sites as [(site, ordinal, ts_ns)], oldest
    first, stamped on the simulated clock — a bounded ring (last 4096)
    feeding the flight recorder's instant events; cleared by
    [seed]/[reset]. *)
val recent_firings : unit -> (string * int * int) list

(** Current [(site, policy)] bindings, sorted by site name. *)
val configured : unit -> (string * policy) list

(** The registry's counters ([fault.checks{site}], [fault.fires{site}],
    aggregate [fault.fires]). Registered under ["fault"] in the default
    obs registry whenever a site is configured. *)
val stats : unit -> Bess_util.Stats.t

val policy_to_string : policy -> string

(** Parse ["never"], ["every:N"], ["prob:P"] or ["plan:3+17+40"]. *)
val policy_of_string : string -> (policy, string) result

(** Named profiles for [--fault-profile] and [bessctl chaos]. *)
val profiles : (string * (string * policy) list) list

(** [profile_of_string spec] resolves a named profile ([off],
    [flaky-net], [flaky-disk], [chaos]) or parses an explicit
    [site=policy,site=policy] list. *)
val profile_of_string : string -> ((string * policy) list, string) result
