lib/core/fetcher.ml: Bess_cache Bess_lock Bess_storage Bytes Server Store
