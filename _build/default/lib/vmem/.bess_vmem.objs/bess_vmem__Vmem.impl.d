lib/vmem/vmem.ml: Array Bess_util Bytes Char Fmt Fun List Stdlib
