lib/core/type_desc.ml: Array Bess_util Fmt Hashtbl List Printf
