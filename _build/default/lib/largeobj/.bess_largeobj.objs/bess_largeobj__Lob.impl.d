lib/largeobj/lob.ml: Array Bess_storage Bess_util Bytes List Option Stdlib
