(** Primitive events and hook functions (section 2.4).

    "Programmers have controlled access to a number of entry points in
    the system via the notion of primitive events and hook functions."
    Hooks are registered per event kind and run in registration order
    when the runtime fires the event — counting commits, reacting to
    segment faults or replacements, observing protection violations —
    without changing application code or system internals. *)

type t =
  | Db_open of { db : int }
  | Db_close of { db : int }
  | Slotted_fault of { seg : int }
  | Data_fault of { seg : int }
  | Write_fault of { seg : int; addr : int }
  | Segment_replacement of { area : int; page : int }
  | Lock_acquired of { txn : int; resource : string }
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int }
  | Deadlock of { txn : int }
  | Protection_violation of { addr : int; write : bool }
      (** the SIGSEGV/SIGBUS analogue the system traps (section 2.4) *)

(** The event's kind name, used as the registration key: ["db_open"],
    ["slotted_fault"], ["txn_commit"], ... *)
val kind : t -> string

(** The event's payload as [key=value] pairs, used for trace entries. *)
val detail : t -> string

val pp : Format.formatter -> t -> unit

type hooks

(** A fresh hook table feeds fired events into {!Bess_obs.Trace.default};
    redirect or silence it with {!set_trace}. *)
val hooks_create : unit -> hooks

(** [set_trace h (Some tr)] routes fired events to ring [tr];
    [set_trace h None] disables tracing for [h]. *)
val set_trace : hooks -> Bess_obs.Trace.t option -> unit

val trace : hooks -> Bess_obs.Trace.t option

(** [register h ~event f] runs [f] on every fired event whose {!kind} is
    [event]; multiple hooks on one event run in registration order. *)
val register : hooks -> event:string -> (t -> unit) -> unit

(** Remove every hook for [event]. *)
val clear : hooks -> event:string -> unit

(** Fire an event: dispatch to its registered hooks. *)
val fire : hooks -> t -> unit

val stats : hooks -> Bess_util.Stats.t
