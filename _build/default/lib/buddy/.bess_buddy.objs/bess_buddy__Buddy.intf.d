lib/buddy/buddy.mli: Bess_util
