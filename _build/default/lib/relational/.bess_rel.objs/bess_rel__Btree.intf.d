lib/relational/btree.mli: Bess
