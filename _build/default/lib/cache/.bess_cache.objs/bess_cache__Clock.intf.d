lib/cache/clock.mli: Cache
