test/test_btree.ml: Alcotest Array Bess Bess_rel Hashtbl List Option QCheck QCheck_alcotest
