(* Classic second-chance clock over cache slots.

   This is the baseline the paper contrasts with in section 4.2: it needs
   a reference bit maintained on *every access*, which a memory-mapped
   architecture does not get to see -- hence BeSS's frame-state variant
   ({!State_clock}). We keep it for experiment E4's comparison and for the
   copy-on-access private pools where the client library mediates access
   anyway. *)

type t = {
  ref_bits : bool array;
  mutable hand : int;
  cache : Cache.t;
}

(* Called by the owner on every logical page access. *)
let note_access t slot_index = t.ref_bits.(slot_index) <- true

let choose t =
  let n = Array.length t.ref_bits in
  (* Two full sweeps suffice: the first clears reference bits, the second
     must find a victim unless everything is pinned. *)
  let rec go steps =
    if steps > 2 * n then None
    else begin
      let i = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let s = Cache.slot t.cache i in
      if s.Cache.pins > 0 then go (steps + 1)
      else if t.ref_bits.(i) then begin
        t.ref_bits.(i) <- false;
        go (steps + 1)
      end
      else Some i
    end
  in
  go 0

let create cache =
  let t = { ref_bits = Array.make (Cache.nslots cache) false; hand = 0; cache } in
  Cache.set_victim_chooser cache (fun () -> choose t);
  t
