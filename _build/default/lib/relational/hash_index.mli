(** A persistent hash index built out of BeSS objects.

    Buckets are ordinary objects — a fixed entry array plus an overflow
    reference — so probes are pointer hops and every update flows through
    the normal write-fault machinery: the index is transactional and
    crash-safe with no code of its own for either. The directory is
    reachable from a named root, so indexes survive sessions. *)

type t

(** Create an empty index registered under [name]. *)
val create : Bess.Session.t -> name:string -> ?n_buckets:int -> unit -> t

val open_existing : Bess.Session.t -> name:string -> t

(** Add an entry mapping [key] to a row (slot address). Duplicates are
    permitted. *)
val insert : t -> key:int -> int -> unit

(** All rows currently under [key]. *)
val lookup : t -> key:int -> int list

(** Remove one (key, row) entry if present. *)
val remove : t -> key:int -> int -> unit

(** Total entries, for integrity checks. *)
val cardinality : t -> int
