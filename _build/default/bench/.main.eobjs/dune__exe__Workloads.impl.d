bench/workloads.ml: Array Bess Bess_baseline Bess_util Bess_vmem Bytes Option Printf Stdlib
