(** Power-of-two bucketed histograms for latencies and sizes. *)

type t

val create : unit -> t

(** Record one non-negative sample (negatives clamp to 0). *)
val observe : t -> int -> unit

val count : t -> int
val sum : t -> int
val min : t -> int
val max : t -> int
val mean : t -> float

(** [percentile t p] estimates the p-th percentile, [p] in (0, 100],
    by linear interpolation within the containing power-of-two bucket,
    clamped to the observed [min]/[max]. *)
val percentile : t -> float -> int

(** [percentile_of_counts counts p] is the same interpolated estimate
    over a raw bucket-count array sharing the power-of-two boundaries —
    e.g. a per-window bucket delta. 0 when the array is empty. *)
val percentile_of_counts : int array -> float -> int

(** Cumulative [(inclusive_upper_bound, cumulative_count)] pairs up to
    the last non-empty bucket, for Prometheus-style [_bucket] export.
    Empty when no samples were observed. *)
val buckets : t -> (int * int) list

(** A copy of the raw per-bucket counts (63 power-of-two buckets). *)
val raw_buckets : t -> int array

(** Bucketwise sum of [src] into [dst] (exact: shared boundaries). *)
val merge_into : dst:t -> t -> unit

val reset : t -> unit
val pp : Format.formatter -> t -> unit
