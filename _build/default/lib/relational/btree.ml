(* A persistent B+-tree of BeSS objects: ordered indexing with range
   scans, complementing {!Hash_index}.

   Every node is an ordinary object whose child/row pointers are swizzled
   BeSS references, so descending the tree is a chain of pointer hops and
   every structural update flows through the normal write-fault machinery
   — the index is transactional, crash-safe, and survives reorganisation
   of its segments like any other data.

   Layout (capacities sized to keep nodes well under a page):
     descriptor:  root ref, height u64
     leaf node:   tag u64 (=0), nkeys u64, next-leaf ref,
                  CAP x (key u64, row ref)
     inner node:  tag u64 (=1), nkeys u64,
                  CAP x key u64, (CAP+1) x child ref

   Deletion is by key+row from the leaf, without rebalancing (standard
   lazy deletion: underfull leaves are permitted and reclaimed when
   emptied); inserts split leaves and inner nodes, growing at the root. *)

module Vmem = Bess_vmem.Vmem

let cap = 24

let leaf_size = 16 + 8 + (cap * 16)
let inner_size = 16 + (cap * 8) + ((cap + 1) * 8)
let desc_size = 16

type t = {
  session : Bess.Session.t;
  desc : int; (* descriptor object: root ref @0, height @8 *)
  leaf_type : Bess.Type_desc.t;
  inner_type : Bess.Type_desc.t;
  file : Bess.Bess_file.t;
}

let types_of session =
  Bess.Catalog.types (Bess.Session.binding session (Bess.Session.main_db_id session)).b_catalog

let leaf_type session =
  match Bess.Type_desc.find_by_name (types_of session) "__btree_leaf" with
  | Some ty -> ty
  | None ->
      (* refs: next-leaf @16, row refs @24+16k+8 *)
      let offsets = Array.init (cap + 1) (fun i -> if i = 0 then 16 else 24 + ((i - 1) * 16) + 8) in
      Bess.Type_desc.register (types_of session) ~name:"__btree_leaf" ~size:leaf_size
        ~ref_offsets:offsets

let inner_type session =
  match Bess.Type_desc.find_by_name (types_of session) "__btree_inner" with
  | Some ty -> ty
  | None ->
      (* children at 16 + cap*8 + 8k *)
      let base = 16 + (cap * 8) in
      let offsets = Array.init (cap + 1) (fun i -> base + (8 * i)) in
      Bess.Type_desc.register (types_of session) ~name:"__btree_inner" ~size:inner_size
        ~ref_offsets:offsets

let desc_type session =
  match Bess.Type_desc.find_by_name (types_of session) "__btree_desc" with
  | Some ty -> ty
  | None -> Bess.Type_desc.register (types_of session) ~name:"__btree_desc" ~size:desc_size
              ~ref_offsets:[| 0 |]

let index_file session =
  let fname = "__btrees" in
  match
    Bess.Catalog.find_file_by_name
      (Bess.Session.binding session (Bess.Session.main_db_id session)).b_catalog fname
  with
  | Some _ -> Bess.Bess_file.open_existing session ~name:fname ()
  | None -> Bess.Bess_file.create session ~name:fname ~slotted_pages:2 ~data_pages:8 ()

(* ---- Node accessors (every access is a vmem access on object data) ---- *)

let mem t = Bess.Session.mem t.session
let data t node = Bess.Session.obj_data t.session node
let tag t node = Vmem.read_i64 (mem t) (data t node)
let is_leaf t node = tag t node = 0
let nkeys t node = Vmem.read_i64 (mem t) (data t node + 8)
let set_nkeys t node n = Vmem.write_i64 (mem t) (data t node + 8) n

(* leaf *)
let leaf_next t node = Bess.Session.read_ref t.session ~data_addr:(data t node + 16)
let set_leaf_next t node nx = Bess.Session.write_ref t.session ~data_addr:(data t node + 16) nx
let leaf_key t node i = Vmem.read_i64 (mem t) (data t node + 24 + (16 * i))
let leaf_row t node i = Bess.Session.read_ref t.session ~data_addr:(data t node + 24 + (16 * i) + 8)

let set_leaf_entry t node i key row =
  Vmem.write_i64 (mem t) (data t node + 24 + (16 * i)) key;
  Bess.Session.write_ref t.session ~data_addr:(data t node + 24 + (16 * i) + 8) row

(* inner *)
let inner_key t node i = Vmem.read_i64 (mem t) (data t node + 16 + (8 * i))
let set_inner_key t node i k = Vmem.write_i64 (mem t) (data t node + 16 + (8 * i)) k
let child_off i = 16 + (cap * 8) + (8 * i)
let inner_child t node i = Bess.Session.read_ref t.session ~data_addr:(data t node + child_off i)

let set_inner_child t node i c =
  Bess.Session.write_ref t.session ~data_addr:(data t node + child_off i) c

let new_leaf t =
  let node = Bess.Bess_file.new_object t.file t.leaf_type ~size:leaf_size in
  Vmem.write_i64 (mem t) (data t node) 0;
  node

let new_inner t =
  let node = Bess.Bess_file.new_object t.file t.inner_type ~size:inner_size in
  Vmem.write_i64 (mem t) (data t node) 1;
  node

(* ---- Descriptor ---- *)

let root t = Bess.Session.read_ref t.session ~data_addr:(data t t.desc)
let set_root t r = Bess.Session.write_ref t.session ~data_addr:(data t t.desc) r
let height t = Vmem.read_i64 (mem t) (data t t.desc + 8)
let set_height t h = Vmem.write_i64 (mem t) (data t t.desc + 8) h

let create session ~name () =
  let file = index_file session in
  let desc = Bess.Bess_file.new_object file (desc_type session) ~size:desc_size in
  Bess.Session.set_root session ~name:("__btree:" ^ name) desc;
  let t = { session; desc; leaf_type = leaf_type session; inner_type = inner_type session; file } in
  let leaf = new_leaf t in
  set_root t (Some leaf);
  set_height t 1;
  t

let open_existing session ~name =
  match Bess.Session.root session ("__btree:" ^ name) with
  | None -> invalid_arg (Printf.sprintf "Btree: no index named %s" name)
  | Some desc ->
      { session; desc; leaf_type = leaf_type session; inner_type = inner_type session;
        file = index_file session }

(* ---- Search ---- *)

(* First slot in a leaf whose key >= k. *)
let leaf_lower_bound t node k =
  let n = nkeys t node in
  let rec go i = if i >= n then n else if leaf_key t node i >= k then i else go (i + 1) in
  go 0

(* Child index to descend for key k on the *insert* path: entries equal
   to a separator go right of it, so appends of duplicates cluster. *)
let inner_slot t node k =
  let n = nkeys t node in
  let rec go i = if i >= n then n else if k < inner_key t node i then i else go (i + 1) in
  go 0

(* Leftmost descent for *search*: duplicates may sit on either side of an
   equal separator, so go left of the first separator >= k. *)
let inner_slot_lb t node k =
  let n = nkeys t node in
  let rec go i = if i >= n then n else if k <= inner_key t node i then i else go (i + 1) in
  go 0

let rec find_leaf_lb t node k =
  if is_leaf t node then node
  else
    let i = inner_slot_lb t node k in
    match inner_child t node i with
    | Some c -> find_leaf_lb t c k
    | None -> failwith "Btree: missing child"

(* All rows under [key]. *)
let lookup t ~key =
  match root t with
  | None -> []
  | Some r ->
      let leaf = find_leaf_lb t r key in
      let rec collect node acc =
        let n = nkeys t node in
        let acc = ref acc and past = ref false in
        let i = ref (leaf_lower_bound t node key) in
        while (not !past) && !i < n do
          if leaf_key t node !i = key then begin
            (match leaf_row t node !i with Some row -> acc := row :: !acc | None -> ());
            incr i
          end
          else past := true
        done;
        (* matching entries may continue in the next leaf *)
        if (not !past) && !i >= n then
          match leaf_next t node with Some nx -> collect nx !acc | None -> !acc
        else !acc
      in
      collect leaf []

(* Range scan: every (key, row) with lo <= key <= hi, in key order. *)
let range t ~lo ~hi f =
  match root t with
  | None -> ()
  | Some r ->
      let rec walk node =
        let n = nkeys t node in
        let stop = ref false in
        for i = 0 to n - 1 do
          if not !stop then begin
            let k = leaf_key t node i in
            if k > hi then stop := true
            else if k >= lo then
              match leaf_row t node i with Some row -> f k row | None -> ()
          end
        done;
        if not !stop then match leaf_next t node with Some nx -> walk nx | None -> ()
      in
      walk (find_leaf_lb t r lo)

(* ---- Insert ---- *)

(* Insert into a leaf known to have room. *)
let leaf_insert_at t node k row =
  let n = nkeys t node in
  let pos = leaf_lower_bound t node k in
  for i = n downto pos + 1 do
    set_leaf_entry t node i (leaf_key t node (i - 1)) (leaf_row t node (i - 1))
  done;
  set_leaf_entry t node pos k (Some row);
  set_nkeys t node (n + 1)

(* Split a full leaf; returns (separator key, new right sibling). *)
let split_leaf t node =
  let n = nkeys t node in
  let mid = n / 2 in
  let right = new_leaf t in
  for i = mid to n - 1 do
    set_leaf_entry t right (i - mid) (leaf_key t node i) (leaf_row t node i)
  done;
  set_nkeys t right (n - mid);
  set_nkeys t node mid;
  set_leaf_next t right (leaf_next t node);
  set_leaf_next t node (Some right);
  (leaf_key t right 0, right)

let inner_insert_at t node pos k child =
  let n = nkeys t node in
  for i = n downto pos + 1 do
    set_inner_key t node i (inner_key t node (i - 1))
  done;
  for i = n + 1 downto pos + 2 do
    set_inner_child t node i (inner_child t node (i - 1))
  done;
  set_inner_key t node pos k;
  set_inner_child t node (pos + 1) (Some child);
  set_nkeys t node (n + 1)

let split_inner t node =
  let n = nkeys t node in
  let mid = n / 2 in
  let sep = inner_key t node mid in
  let right = new_inner t in
  for i = mid + 1 to n - 1 do
    set_inner_key t right (i - mid - 1) (inner_key t node i)
  done;
  for i = mid + 1 to n do
    set_inner_child t right (i - mid - 1) (inner_child t node i)
  done;
  set_nkeys t right (n - mid - 1);
  set_nkeys t node mid;
  (sep, right)

(* Recursive insert; returns Some (sep, right) when [node] split. *)
let rec insert_rec t node k row =
  if is_leaf t node then begin
    leaf_insert_at t node k row;
    if nkeys t node >= cap then Some (split_leaf t node) else None
  end
  else begin
    let i = inner_slot t node k in
    let child = Option.get (inner_child t node i) in
    match insert_rec t child k row with
    | None -> None
    | Some (sep, right) ->
        inner_insert_at t node i sep right;
        if nkeys t node >= cap then Some (split_inner t node) else None
  end

let insert t ~key row =
  let r = Option.get (root t) in
  match insert_rec t r key row with
  | None -> ()
  | Some (sep, right) ->
      let new_root = new_inner t in
      set_inner_key t new_root 0 sep;
      set_inner_child t new_root 0 (Some r);
      set_inner_child t new_root 1 (Some right);
      set_nkeys t new_root 1;
      set_root t (Some new_root);
      set_height t (height t + 1)

(* ---- Delete (lazy: no rebalancing) ---- *)

let remove t ~key row =
  match root t with
  | None -> false
  | Some r ->
      let rec try_leaf node =
        let n = nkeys t node in
        let found = ref false in
        (try
           for i = leaf_lower_bound t node key to n - 1 do
             if leaf_key t node i > key then raise Exit;
             if leaf_row t node i = Some row then begin
               for j = i to n - 2 do
                 set_leaf_entry t node j (leaf_key t node (j + 1)) (leaf_row t node (j + 1))
               done;
               set_leaf_entry t node (n - 1) 0 None;
               set_nkeys t node (n - 1);
               found := true;
               raise Exit
             end
           done
         with Exit -> ());
        if !found then true
        else
          (* duplicates may have spilled right *)
          match leaf_next t node with
          | Some nx when nkeys t nx > 0 && leaf_key t nx 0 <= key -> try_leaf nx
          | _ -> false
      in
      try_leaf (find_leaf_lb t r key)

(* ---- Integrity (for property tests) ---- *)

let check t =
  let rec go node lo hi depth =
    if depth > 32 then failwith "btree too deep";
    let n = nkeys t node in
    if is_leaf t node then
      for i = 0 to n - 1 do
        let k = leaf_key t node i in
        if k < lo || k > hi then failwith "leaf key out of bounds";
        if i > 0 && leaf_key t node (i - 1) > k then failwith "leaf keys unsorted"
      done
    else begin
      if n = 0 then failwith "empty inner node";
      for i = 0 to n - 1 do
        (* duplicates make separators non-strict *)
        if i > 0 && inner_key t node (i - 1) > inner_key t node i then
          failwith "inner keys unsorted"
      done;
      for i = 0 to n do
        let clo = if i = 0 then lo else inner_key t node (i - 1) in
        let chi = if i = n then hi else inner_key t node i in
        match inner_child t node i with
        | Some c -> go c clo chi (depth + 1)
        | None -> failwith "missing child"
      done
    end
  in
  match root t with None -> () | Some r -> go r min_int max_int 0

let cardinality t =
  let total = ref 0 in
  (match root t with
  | None -> ()
  | Some r ->
      let rec leftmost node = if is_leaf t node then node else leftmost (Option.get (inner_child t node 0)) in
      let rec walk node =
        total := !total + nkeys t node;
        match leaf_next t node with Some nx -> walk nx | None -> ()
      in
      walk (leftmost r));
  !total
