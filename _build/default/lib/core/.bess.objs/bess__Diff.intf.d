lib/core/diff.mli: Bytes
