lib/baseline/soft_dirty.ml: Array Bess_util Bytes
