(* Discrete-event scheduler: a binary min-heap of (tick, seq, closure).

   The heap is an array-backed implicit tree ordered by (at, seq) so
   equal-tick events pop in scheduling order — the tie-break that makes
   the whole simulation deterministic. No Stdlib priority queue is
   stable, and stability is the point, so the heap is hand-rolled.

   The scheduler owns time only in one direction: before running an
   event it advances the process-wide Span clock to the event's due
   time. Simulated work inside an event (log forces, wire hops) advances
   the same clock further, so later events may find their due time
   already past — they run immediately, late, like an interrupt handler
   that was masked. *)

module Span = Bess_obs.Span

type event = { at : int; seq : int; run : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable events_run : int;
  mutable current_lag_ns : int; (* lateness of the event running right now *)
  stats : Bess_util.Stats.t;
}

let dummy = { at = 0; seq = 0; run = ignore }

let create () =
  let stats = Bess_util.Stats.create () in
  Bess_obs.Registry.register_stats "sched" stats;
  let t =
    {
      heap = Array.make 64 dummy;
      size = 0;
      next_seq = 0;
      events_run = 0;
      current_lag_ns = 0;
      stats;
    }
  in
  Bess_obs.Registry.register_gauge "sched" "sched.pending_events" (fun () -> t.size);
  t

let stats t = t.stats
let pending t = t.size
let events_run t = t.events_run
let current_lag_ns t = t.current_lag_ns

(* Strict total order: due time first, scheduling order on ties. *)
let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let h = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 h 0 t.size;
  t.heap <- h

let push t e =
  if t.size = Array.length t.heap then grow t;
  let h = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  h.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before h.(!i) h.(parent) then begin
      let tmp = h.(parent) in
      h.(parent) <- h.(!i);
      h.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  let h = t.heap in
  let min = h.(0) in
  t.size <- t.size - 1;
  h.(0) <- h.(t.size);
  h.(t.size) <- dummy;
  (* Sift down. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before h.(l) h.(!smallest) then smallest := l;
    if r < t.size && before h.(r) h.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.(!smallest) in
      h.(!smallest) <- h.(!i);
      h.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  min

let schedule_at t ~at f =
  let at = Stdlib.max at (Span.now_ns ()) in
  let e = { at; seq = t.next_seq; run = f } in
  t.next_seq <- t.next_seq + 1;
  push t e;
  Bess_util.Stats.incr t.stats "sched.scheduled";
  if t.size > Bess_util.Stats.get t.stats "sched.heap_peak" then
    Bess_util.Stats.set t.stats "sched.heap_peak" t.size

let schedule t ~after f =
  if after < 0 then invalid_arg "Sched.schedule: negative delay";
  schedule_at t ~at:(Span.now_ns () + after) f

let run ?max_events t =
  let budget = match max_events with Some n -> n | None -> max_int in
  let ran = ref 0 in
  while t.size > 0 && !ran < budget do
    let e = pop t in
    let now = Span.now_ns () in
    if e.at > now then begin
      Span.advance_ns (e.at - now);
      t.current_lag_ns <- 0
    end
    else begin
      (* The event runs late: simulated work overran its due time. The
         lag is visible to the callback ([current_lag_ns]) so the driver
         can bill queueing delay to the transaction it belongs to. *)
      t.current_lag_ns <- now - e.at;
      if e.at < now then begin
        Bess_util.Stats.incr t.stats "sched.late_events";
        Bess_util.Stats.observe t.stats "sched.late_ns" (now - e.at)
      end
    end;
    e.run ();
    t.current_lag_ns <- 0;
    incr ran;
    t.events_run <- t.events_run + 1;
    Bess_util.Stats.incr t.stats "sched.events"
  done;
  !ran
