(* A set of storage areas addressed by id, with round-robin placement.

   Databases own an area set: ordinary BeSS files live in one area, while
   multifiles stripe their object segments round-robin across every area in
   the set, which is what gives the parallel-scan capability of section 2
   ("when a multifile expands over different physical devices ... it
   provides a convenient mechanism for parallel I/O processing"). *)

type t = {
  areas : (int, Area.t) Hashtbl.t;
  mutable order : int list; (* area ids in registration order, for striping *)
  mutable rr_cursor : int;
  stats : Bess_util.Stats.t;
}

let create () =
  { areas = Hashtbl.create 8; order = []; rr_cursor = 0; stats = Bess_util.Stats.create () }

let add t area =
  let id = Area.id area in
  if Hashtbl.mem t.areas id then invalid_arg "Area_set.add: duplicate area id";
  Hashtbl.add t.areas id area;
  t.order <- t.order @ [ id ]

let find t id =
  match Hashtbl.find_opt t.areas id with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Area_set.find: unknown area %d" id)

let ids t = t.order
let n_areas t = List.length t.order
let stats t = t.stats
let iter t f = List.iter (fun id -> f (find t id)) t.order

(* Allocate a segment in a specific area. *)
let alloc_in t ~area_id ~npages =
  let area = find t area_id in
  match Area.alloc area ~npages with
  | Some first_page -> Some { Seg_addr.area = area_id; first_page; npages }
  | None -> None

(* Allocate striping round-robin across areas; used by multifiles. Falls
   through to the next area when one is full. *)
let alloc_striped t ~npages =
  let n = n_areas t in
  if n = 0 then None
  else begin
    let arr = Array.of_list t.order in
    let rec go tries =
      if tries >= n then None
      else begin
        let id = arr.((t.rr_cursor + tries) mod n) in
        match alloc_in t ~area_id:id ~npages with
        | Some addr ->
            t.rr_cursor <- (t.rr_cursor + tries + 1) mod n;
            Bess_util.Stats.incr t.stats (Printf.sprintf "area_set.striped_to.%d" id);
            Some addr
        | None -> go (tries + 1)
      end
    in
    go 0
  end

let free t (addr : Seg_addr.t) = Area.free (find t addr.area) ~first_page:addr.first_page

let read_page t ~area_id pageno = Area.read_page (find t area_id) pageno
let read_page_into t ~area_id pageno buf = Area.read_page_into (find t area_id) pageno buf
let write_page t ~area_id pageno buf = Area.write_page (find t area_id) pageno buf

let sync t = iter t Area.sync
let close t = iter t Area.close
