(** A bounded ring of trace entries with logical-clock timestamps.

    {!Core.Event.fire} feeds primitive events here so fault waves and
    lock/deadlock sequences can be replayed in tests. The ring keeps the
    last [capacity] accepted entries; the logical clock advances on every
    [record] call, filtered or not. *)

type entry = { seq : int; clock : int; kind : string; detail : string }

type t

val create : ?capacity:int -> unit -> t

(** The default, process-wide ring that freshly created hook tables feed. *)
val default : t

val capacity : t -> int
val length : t -> int

(** Current logical time: the number of [record] calls so far. *)
val clock : t -> int

(** [set_filter t (Some kinds)] records only the listed event kinds;
    [set_filter t None] (the initial state) records everything. *)
val set_filter : t -> string list option -> unit

val record : t -> kind:string -> detail:string -> unit

(** Retained entries, oldest first. *)
val to_list : t -> entry list

(** Retained entries of one kind, oldest first. *)
val find : t -> kind:string -> entry list

val clear : t -> unit

(** [with_fresh f] zeroes the ring (default: the process-wide one) —
    entries, clock, sequence numbers and filter — for the duration of
    [f], restoring the previous state on the way out, exceptions
    included. *)
val with_fresh : ?trace:t -> (unit -> 'a) -> 'a
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
