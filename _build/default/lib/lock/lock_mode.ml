(* Lock modes and their compatibility/supremum algebra.

   BeSS uses strict two-phase locking (section 3). Pages are the unit the
   virtual-memory machinery detects, but files and objects also get locked
   (intention modes make the hierarchy work, and section 2.3's planned
   object-level locking reuses the same algebra). *)

type t = IS | IX | S | SIX | X

let all = [ IS; IX; S; SIX; X ]

let to_string = function IS -> "IS" | IX -> "IX" | S -> "S" | SIX -> "SIX" | X -> "X"
let pp ppf m = Fmt.string ppf (to_string m)

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _, _ -> false

(* Least upper bound in the standard lattice: IS < IX,S; IX,S < SIX < X. *)
let sup a b =
  match (a, b) with
  | X, _ | _, X -> X
  | SIX, _ | _, SIX -> SIX
  | IX, S | S, IX -> SIX
  | IX, _ | _, IX -> IX
  | S, _ | _, S -> S
  | IS, IS -> IS

(* [covers held want]: does holding [held] already satisfy a request for
   [want]? True iff sup held want = held. *)
let covers held want = sup held want = held

(* Is [a] at least as strong as a read lock / write lock? *)
let allows_read = function S | SIX | X -> true | IS | IX -> false
let allows_write = function X -> true | IS | IX | S | SIX -> false
