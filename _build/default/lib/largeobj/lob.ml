(* Very large objects: variable-size disk segments indexed by a positional
   tree (section 2.1, following Biliris ICDE'92 / SIGMOD'92 [3,4]).

   Objects too big for transparent mapping (created incrementally, or past
   the 64KB transparent limit) get a class interface with byte-range
   operations: read, write, insert, delete at arbitrary positions, append,
   truncate. The object body lives in a sequence of variable-size segments
   (leaves); internal nodes index them by cumulative byte count, so a
   positional lookup descends by subtree sizes. The root descriptor is
   what BeSS stores in the overflow segment.

   All byte-range edits funnel through one splice primitive
   [replace_range]: delete [del] bytes at [pos] and insert [ins] there.
   Leaves are rewritten whole (read-modify-write), oversized results split
   into several leaves, adjacent small leaves coalesce, and parent nodes
   regroup to bounded fan-out. A compression codec can be installed
   per-object (the paper's hook example): leaves then store compressed
   images whose physical length differs from their logical length. *)

type codec = { compress : Bytes.t -> Bytes.t; decompress : Bytes.t -> Bytes.t }

type leaf = {
  mutable seg : Bess_storage.Seg_addr.t option; (* None only for empty leaves in flight *)
  mutable len : int; (* logical bytes *)
  mutable plen : int; (* physical bytes stored (= len without codec) *)
}

type node = Leaf of leaf | Inner of inner
and inner = { mutable children : node array; mutable bytes : int }

type t = {
  area : Bess_storage.Area.t;
  mutable root : node;
  mutable codec : codec option;
  max_leaf : int; (* max logical bytes per leaf *)
  min_leaf : int; (* coalescing threshold *)
  order : int; (* max children per inner node *)
  stats : Bess_util.Stats.t;
}

let node_size = function Leaf l -> l.len | Inner n -> n.bytes

let default_max_leaf area = 8 * Bess_storage.Area.page_size area

let create ?max_leaf ?(order = 16) ?hint area =
  let max_leaf = match max_leaf with Some m -> m | None -> default_max_leaf area in
  if max_leaf < Bess_storage.Area.page_size area then
    invalid_arg "Lob.create: max_leaf smaller than a page";
  ignore hint;
  (* A size hint could preallocate; segments are allocated lazily so the
     hint only tunes the initial leaf fill factor. Kept for interface
     fidelity. *)
  {
    area;
    root = Leaf { seg = None; len = 0; plen = 0 };
    codec = None;
    max_leaf;
    min_leaf = max_leaf / 4;
    order;
    stats = Bess_util.Stats.create ();
  }

let size t = node_size t.root
let stats t = t.stats
let set_codec t codec = t.codec <- codec

(* ---- Leaf I/O ------------------------------------------------------------ *)

let page_size t = Bess_storage.Area.page_size t.area

let free_seg t (leaf : leaf) =
  match leaf.seg with
  | Some seg ->
      Bess_storage.Area.free t.area ~first_page:seg.first_page;
      leaf.seg <- None;
      Bess_util.Stats.incr t.stats "lob.seg_frees"
  | None -> ()

(* Read the decoded logical content of a leaf. *)
let read_leaf t (leaf : leaf) =
  match leaf.seg with
  | None -> Bytes.create 0
  | Some seg ->
      let ps = page_size t in
      let raw = Bytes.create (seg.npages * ps) in
      let buf = Bytes.create ps in
      for i = 0 to seg.npages - 1 do
        Bess_storage.Area.read_page_into t.area (seg.first_page + i) buf;
        Bytes.blit buf 0 raw (i * ps) ps
      done;
      Bess_util.Stats.add t.stats "lob.pages_read" seg.npages;
      let phys = Bytes.sub raw 0 leaf.plen in
      (match t.codec with
      | Some c ->
          let logical = c.decompress phys in
          if Bytes.length logical <> leaf.len then failwith "Lob: codec length mismatch";
          logical
      | None -> phys)

(* Write logical [data] into [leaf], reallocating its segment when the
   current one cannot hold the (possibly compressed) physical image. *)
let write_leaf t (leaf : leaf) data =
  let phys = match t.codec with Some c -> c.compress data | None -> data in
  let ps = page_size t in
  let need_pages = Stdlib.max 1 ((Bytes.length phys + ps - 1) / ps) in
  let fits =
    match leaf.seg with Some seg -> need_pages <= seg.npages | None -> false
  in
  (* Reallocate when too small, or when shrinking below half the current
     allocation (avoid holding 2x the needed space forever). *)
  let realloc =
    (not fits)
    || match leaf.seg with Some seg -> need_pages * 2 <= seg.npages | None -> true
  in
  if realloc then begin
    free_seg t leaf;
    match Bess_storage.Area.alloc t.area ~npages:need_pages with
    | Some first_page ->
        leaf.seg <-
          Some { Bess_storage.Seg_addr.area = Bess_storage.Area.id t.area; first_page;
                 npages = need_pages };
        Bess_util.Stats.incr t.stats "lob.seg_allocs"
    | None -> failwith "Lob: storage area out of space"
  end;
  let seg = Option.get leaf.seg in
  let buf = Bytes.create ps in
  for i = 0 to need_pages - 1 do
    Bytes.fill buf 0 ps '\000';
    let off = i * ps in
    let chunk = Stdlib.min ps (Bytes.length phys - off) in
    if chunk > 0 then Bytes.blit phys off buf 0 chunk;
    Bess_storage.Area.write_page t.area (seg.first_page + i) buf
  done;
  Bess_util.Stats.add t.stats "lob.pages_written" need_pages;
  leaf.len <- Bytes.length data;
  leaf.plen <- Bytes.length phys

(* Build leaves for [data], splitting at 3/4 of max_leaf so freshly split
   leaves keep slack for subsequent inserts. *)
let leaves_for t data =
  let n = Bytes.length data in
  if n = 0 then []
  else begin
    let target = Stdlib.max 1 (t.max_leaf * 3 / 4) in
    let chunk_size = if n <= t.max_leaf then n else target in
    let rec go pos acc =
      if pos >= n then List.rev acc
      else begin
        let len = Stdlib.min chunk_size (n - pos) in
        (* Avoid a dangling tiny tail: steal from the previous chunk. *)
        let len =
          if n - pos - len > 0 && n - pos - len < t.min_leaf && len = chunk_size then
            (n - pos + 1) / 2
          else len
        in
        let leaf = { seg = None; len = 0; plen = 0 } in
        write_leaf t leaf (Bytes.sub data pos len);
        go (pos + len) (Leaf leaf :: acc)
      end
    in
    go 0 []
  end

(* ---- Tree maintenance ----------------------------------------------------- *)

let inner_of children =
  let bytes = Array.fold_left (fun acc c -> acc + node_size c) 0 children in
  Inner { children; bytes }

(* Pack a child list into nodes of fan-out <= order, possibly several. *)
let group t nodes =
  let rec pack = function
    | [] -> []
    | nodes ->
        let n = List.length nodes in
        if n <= t.order then [ inner_of (Array.of_list nodes) ]
        else begin
          let take = (n + 1) / 2 in
          let take = Stdlib.min take t.order in
          let rec split k acc = function
            | rest when k = 0 -> (List.rev acc, rest)
            | x :: rest -> split (k - 1) (x :: acc) rest
            | [] -> (List.rev acc, [])
          in
          let first, rest = split take [] nodes in
          inner_of (Array.of_list first) :: pack rest
        end
  in
  pack nodes

(* Coalesce adjacent small leaves in a freshly rebuilt child list. *)
let coalesce t nodes =
  let rec go = function
    | Leaf a :: Leaf b :: rest
      when (a.len < t.min_leaf || b.len < t.min_leaf) && a.len + b.len <= t.max_leaf ->
        let data_a = read_leaf t a in
        let data_b = read_leaf t b in
        let combined = Bytes.cat data_a data_b in
        free_seg t b;
        write_leaf t a combined;
        Bess_util.Stats.incr t.stats "lob.coalesces";
        go (Leaf a :: rest)
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go nodes

(* The splice primitive: within [node], delete [del] bytes at [pos] and
   insert [ins] at [pos]. Returns replacement nodes (possibly none, when
   the subtree becomes empty, or several, when leaves split). The caller
   guarantees 0 <= pos <= size node and pos + del <= size node. *)
let rec splice t node ~pos ~del ~ins =
  match node with
  | Leaf leaf ->
      let data = read_leaf t leaf in
      let prefix = Bytes.sub data 0 pos in
      let suffix = Bytes.sub data (pos + del) (Bytes.length data - pos - del) in
      let merged = Bytes.concat Bytes.empty [ prefix; ins; suffix ] in
      if Bytes.length merged = 0 then begin
        free_seg t leaf;
        []
      end
      else if Bytes.length merged <= t.max_leaf then begin
        write_leaf t leaf merged;
        [ Leaf leaf ]
      end
      else begin
        free_seg t leaf;
        leaves_for t merged
      end
  | Inner inner ->
      let out = ref [] in
      let emit n = out := n :: !out in
      let cursor = ref 0 in
      let remaining_del = ref del in
      let ins_pending = ref (Some ins) in
      Array.iter
        (fun child ->
          let csize = node_size child in
          let cstart = !cursor and cend = !cursor + csize in
          cursor := cend;
          (* Does the edit window [pos, pos+del] touch this child? The
             insert belongs to the child containing [pos] (or the first
             child whose end reaches pos, to handle pos at a boundary). *)
          let overlaps = pos < cend && pos + del > cstart in
          let insert_here = !ins_pending <> None && pos >= cstart && pos <= cend in
          if not (overlaps || insert_here) then emit child
          else begin
            let local_pos = Stdlib.max 0 (pos - cstart) in
            let local_del = Stdlib.min (csize - local_pos) !remaining_del in
            let local_ins =
              if insert_here then begin
                ins_pending := None;
                ins
              end
              else Bytes.create 0
            in
            remaining_del := !remaining_del - local_del;
            List.iter emit (splice t child ~pos:local_pos ~del:local_del ~ins:local_ins)
          end)
        inner.children;
      let children = coalesce t (List.rev !out) in
      (match children with
      | [] -> []
      | [ single ] -> [ single ]
      | many -> group t many)

(* Wrap splice results back into a single root. *)
let set_root t nodes =
  let rec wrap = function
    | [] -> Leaf { seg = None; len = 0; plen = 0 }
    | [ single ] -> single
    | many -> wrap (group t many)
  in
  t.root <- wrap nodes

let replace_range t ~pos ~del ins =
  let n = size t in
  if pos < 0 || del < 0 || pos + del > n then invalid_arg "Lob: range out of bounds";
  set_root t (splice t t.root ~pos ~del ~ins);
  Bess_util.Stats.incr t.stats "lob.splices"

(* ---- Public byte-range interface ------------------------------------------ *)

let insert t ~pos data = replace_range t ~pos ~del:0 data
let append t data = replace_range t ~pos:(size t) ~del:0 data
let delete t ~pos ~len = replace_range t ~pos ~del:len (Bytes.create 0)
let write t ~pos data = replace_range t ~pos ~del:(Stdlib.min (Bytes.length data) (size t - pos)) data

let truncate t new_size =
  let n = size t in
  if new_size < 0 || new_size > n then invalid_arg "Lob.truncate: bad size";
  delete t ~pos:new_size ~len:(n - new_size)

let read t ~pos ~len =
  let n = size t in
  if pos < 0 || len < 0 || pos + len > n then invalid_arg "Lob.read: range out of bounds";
  let out = Bytes.create len in
  let filled = ref 0 in
  let rec go node node_start =
    if !filled < len then
      match node with
      | Leaf leaf ->
          let cstart = node_start and cend = node_start + leaf.len in
          let lo = Stdlib.max pos cstart and hi = Stdlib.min (pos + len) cend in
          if lo < hi then begin
            let data = read_leaf t leaf in
            Bytes.blit data (lo - cstart) out (lo - pos) (hi - lo);
            filled := !filled + (hi - lo)
          end
      | Inner inner ->
          let cursor = ref node_start in
          Array.iter
            (fun child ->
              let csize = node_size child in
              if !cursor < pos + len && !cursor + csize > pos then go child !cursor;
              cursor := !cursor + csize)
            inner.children
  in
  go t.root 0;
  out

let to_bytes t = read t ~pos:0 ~len:(size t)

(* Release every segment the object owns. *)
let destroy t =
  let rec go = function
    | Leaf leaf -> free_seg t leaf
    | Inner inner -> Array.iter go inner.children
  in
  go t.root;
  t.root <- Leaf { seg = None; len = 0; plen = 0 }

(* ---- Descriptor (persisted in the overflow segment) ----------------------- *)

let rec encoded_node_size = function
  | Leaf _ -> 1 + 4 + 4 + Bess_storage.Seg_addr.encoded_size
  | Inner inner ->
      1 + 4 + Array.fold_left (fun acc c -> acc + encoded_node_size c) 0 inner.children

let encode t =
  let b = Bytes.create (encoded_node_size t.root) in
  let pos = ref 0 in
  let rec go = function
    | Leaf leaf ->
        Bess_util.Codec.set_u8 b !pos 0;
        Bess_util.Codec.set_u32 b (!pos + 1) leaf.len;
        Bess_util.Codec.set_u32 b (!pos + 5) leaf.plen;
        let seg =
          match leaf.seg with
          | Some s -> s
          | None -> { Bess_storage.Seg_addr.area = 0; first_page = 0; npages = 0 }
        in
        Bess_storage.Seg_addr.encode b (!pos + 9) seg;
        pos := !pos + 9 + Bess_storage.Seg_addr.encoded_size
    | Inner inner ->
        Bess_util.Codec.set_u8 b !pos 1;
        Bess_util.Codec.set_u32 b (!pos + 1) (Array.length inner.children);
        pos := !pos + 5;
        Array.iter go inner.children
  in
  go t.root;
  b

let decode ?max_leaf ?(order = 16) area b =
  let t = create ?max_leaf ~order area in
  let pos = ref 0 in
  let rec go () =
    let tag = Bess_util.Codec.get_u8 b !pos in
    match tag with
    | 0 ->
        let len = Bess_util.Codec.get_u32 b (!pos + 1) in
        let plen = Bess_util.Codec.get_u32 b (!pos + 5) in
        let seg = Bess_storage.Seg_addr.decode b (!pos + 9) in
        pos := !pos + 9 + Bess_storage.Seg_addr.encoded_size;
        let seg = if seg.npages = 0 then None else Some seg in
        Leaf { seg; len; plen }
    | 1 ->
        let n = Bess_util.Codec.get_u32 b (!pos + 1) in
        pos := !pos + 5;
        let children = Array.init n (fun _ -> go ()) in
        inner_of children
    | _ -> failwith "Lob.decode: corrupt descriptor"
  in
  t.root <- go ();
  t

(* ---- Invariants ------------------------------------------------------------ *)

let check t =
  let rec go depth = function
    | Leaf leaf ->
        if leaf.len < 0 || leaf.len > t.max_leaf then failwith "leaf size out of range";
        if leaf.len > 0 && leaf.seg = None then failwith "non-empty leaf without segment";
        (match (t.codec, leaf.seg) with
        | None, Some _ when leaf.plen <> leaf.len -> failwith "plen <> len without codec"
        | _ -> ());
        leaf.len
    | Inner inner ->
        if Array.length inner.children = 0 then failwith "empty inner node";
        if Array.length inner.children > t.order then failwith "fan-out exceeds order";
        if depth > 64 then failwith "tree too deep";
        let total = Array.fold_left (fun acc c -> acc + go (depth + 1) c) 0 inner.children in
        if total <> inner.bytes then failwith "cached byte count out of sync";
        total
  in
  ignore (go 0 t.root)

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Inner inner -> 1 + Array.fold_left (fun acc c -> Stdlib.max acc (go c)) 0 inner.children
  in
  go t.root
