(* Causal span tracing on the simulated clock.

   The registry (PR 1) answers "how many" — faults taken, forces issued,
   messages sent. Spans answer "where the time went in *this* request":
   each one is a timed step of a causal chain, parented to whatever was
   ambient when it opened. The ambient context is a dynamically-scoped
   cell: [with_span]/[enter] swap it, so the net layer, the fault
   handler and the lock table attach children without any explicit
   context argument threading through the request path.

   Time is a process-wide simulated-nanosecond counter. Substrates with
   a cost model advance it ([Net.account] adds wire time, the fault path
   adds a trap cost, the log adds a force cost); every span open/close
   adds one more, which makes all stamps distinct and children nest
   strictly inside their parents — the property the Chrome trace view
   and the nesting tests rely on.

   Everything is a no-op until a collector is installed, so the
   instrumented hot paths pay one branch when tracing is off. *)

type span = {
  id : int;
  mutable parent : int option;
  kind : string;
  start_ns : int;
  mutable end_ns : int; (* -1 while open *)
  mutable attrs : (string * string) list;
}

type t = {
  ring : span option array; (* completed spans, bounded, oldest evicted *)
  mutable head : int;
  mutable length : int;
  mutable next_id : int;
  open_spans : (int, span) Hashtbl.t; (* id -> still-open span *)
  mutable dropped : int;
  by_id : (int, span) Hashtbl.t; (* open + retained completed spans *)
  stats : Bess_util.Stats.t;
}

(* The central table. Opening any other kind raises: a typo'd kind would
   otherwise silently fork its own histogram and break the breakdown. *)
let kinds =
  [
    "bench.workload"; (* one experiment under Report.with_observed *)
    "session.txn"; (* client transaction, begin_txn..commit/abort *)
    "session.fault"; (* fault wave: slotted / data / large *)
    "client.request"; (* one fetcher operation (direct embedding) *)
    "client.backoff"; (* retry backoff wait after a request timeout *)
    "server.request"; (* one server-side operation *)
    "net.rpc"; (* full RPC round trip *)
    "net.wire"; (* simulated wire time of one message *)
    "net.handler"; (* destination handler execution *)
    "net.send"; (* one-way message (callbacks) *)
    "vmem.fault"; (* protection-fault resolution *)
    "cache.miss"; (* miss fill *)
    "cache.evict"; (* eviction, including dirty writeback *)
    "wal.append"; (* one log record append *)
    "wal.force"; (* log force to durable storage *)
    "wal.group_force"; (* one coalesced group-commit force *)
    "wal.ticket_wait"; (* durability-ticket registration to acknowledged durable *)
    "lock.acquire"; (* one lock-table request *)
    "lock.wait"; (* blocked-to-resolved queue time (root span) *)
    "sched.txn"; (* one driver transaction attempt, across events (root span) *)
    "2pc.prepare"; (* coordinator vote collection across all participants *)
    "2pc.decide"; (* coordinator decision fan-out until every ack *)
  ]

let known_kinds =
  let h = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace h k ()) kinds;
  h

let check_kind kind =
  if not (Hashtbl.mem known_kinds kind) then
    invalid_arg (Printf.sprintf "Span: kind %S is not in Span.kinds" kind)

(* ---- The simulated clock and the ambient context ------------------------- *)

let clock = ref 0
let now_ns () = !clock

(* The windowed sampler (Series) hooks clock advances to close sampling
   windows in simulated time. One match on a ref when no hook is
   installed — the same zero-cost bar as the collector branch. The hook
   runs after the clock has moved and must not advance it recursively. *)
let tick_hook : (unit -> unit) option ref = ref None
let set_tick_hook h = tick_hook := h

let advance_ns n =
  if n > 0 then begin
    clock := !clock + n;
    match !tick_hook with None -> () | Some f -> f ()
  end

let the_collector : t option ref = ref None
let current : span option ref = ref None

let install c =
  the_collector := c;
  current := None

let installed () = !the_collector
let enabled () = !the_collector <> None

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  let stats = Bess_util.Stats.create () in
  (* Durations land under "span.<kind>": the registry's flattening rule
     keeps the prefix, so bench_report.json gains the breakdown. *)
  Registry.register_stats "span" stats;
  {
    ring = Array.make capacity None;
    head = 0;
    length = 0;
    next_id = 1;
    open_spans = Hashtbl.create 256;
    dropped = 0;
    by_id = Hashtbl.create 256;
    stats;
  }

(* ---- Open / close --------------------------------------------------------- *)

let open_in c ~parent ~kind ~attrs =
  check_kind kind;
  advance_ns 1;
  let s =
    { id = c.next_id; parent = Option.map (fun p -> p.id) parent; kind;
      start_ns = !clock; end_ns = -1; attrs }
  in
  c.next_id <- c.next_id + 1;
  Hashtbl.replace c.open_spans s.id s;
  Hashtbl.replace c.by_id s.id s;
  s

(* Reparent [s] to its nearest still-open ancestor when its recorded
   parent closed first: the nesting invariant (child within the parent's
   [start,end]) must hold in every rendering, and an honest counter plus
   an attribute report the anomaly instead of hiding it. *)
let rec fix_parent c s =
  match s.parent with
  | None -> ()
  | Some pid -> (
      match Hashtbl.find_opt c.by_id pid with
      | None -> s.parent <- None (* ancestor evicted: treat as root *)
      | Some p ->
          if p.end_ns >= 0 && p.end_ns < s.end_ns then begin
            s.parent <- p.parent;
            fix_parent c s
          end)

let push_completed c s =
  (match c.ring.(c.head) with
  | Some old ->
      Hashtbl.remove c.by_id old.id;
      c.dropped <- c.dropped + 1
  | None -> ());
  c.ring.(c.head) <- Some s;
  c.head <- (c.head + 1) mod Array.length c.ring;
  if c.length < Array.length c.ring then c.length <- c.length + 1

(* An online consumer of completed spans (the critical-path sink).
   Called after the span is fully closed, reparented and pushed; parents
   may still be open, so consumers can walk up via [find_span]. One
   match on a ref when absent — the usual zero-cost bar. *)
let close_hook : (t -> span -> unit) option ref = ref None
let set_close_hook h = close_hook := h

let close_in c s ~attrs =
  if s.end_ns >= 0 then Bess_util.Stats.incr c.stats "span.double_close"
  else begin
    advance_ns 1;
    s.end_ns <- !clock;
    s.attrs <- s.attrs @ attrs;
    Hashtbl.remove c.open_spans s.id;
    let out_of_order =
      match s.parent with
      | None -> false
      | Some pid -> (
          match Hashtbl.find_opt c.by_id pid with
          | Some p -> p.end_ns >= 0 && p.end_ns < s.end_ns
          | None -> false)
    in
    if out_of_order then begin
      Bess_util.Stats.incr c.stats "span.out_of_order";
      s.attrs <- s.attrs @ [ ("out_of_order", "true") ];
      fix_parent c s
    end;
    Bess_util.Stats.observe c.stats ("span." ^ s.kind) (s.end_ns - s.start_ns);
    push_completed c s;
    match !close_hook with None -> () | Some f -> f c s
  end

(* ---- Public span API ------------------------------------------------------ *)

(* A handle remembers its collector (closing survives a later
   [install None]) and, for scoped spans, the ambient span to restore. *)
type opened = { h_span : span; h_col : t; h_restore : span option option }
type handle = opened option

let none : handle = None

let with_span ?(attrs = []) ~kind f =
  match !the_collector with
  | None -> f ()
  | Some c ->
      let parent = !current in
      let s = open_in c ~parent ~kind ~attrs in
      current := Some s;
      Fun.protect
        ~finally:(fun () ->
          current := parent;
          close_in c s ~attrs:[])
        f

let enter ?(attrs = []) ~kind () : handle =
  match !the_collector with
  | None -> None
  | Some c ->
      let parent = !current in
      let s = open_in c ~parent ~kind ~attrs in
      current := Some s;
      Some { h_span = s; h_col = c; h_restore = Some parent }

let start ?(root = false) ?(attrs = []) ~kind () : handle =
  match !the_collector with
  | None -> None
  | Some c ->
      let parent = if root then None else !current in
      let s = open_in c ~parent ~kind ~attrs in
      Some { h_span = s; h_col = c; h_restore = None }

let finish ?(attrs = []) (h : handle) =
  match h with
  | None -> ()
  | Some { h_span; h_col; h_restore } ->
      (match h_restore with
      | Some saved ->
          (* Restore only if this span is still the ambient one: an
             interleaved enter/finish must not clobber a newer context. *)
          (match !current with
          | Some cur when cur.id = h_span.id -> current := saved
          | _ -> ())
      | None -> ());
      close_in h_col h_span ~attrs

(* Make an already-open handle the ambient span for the extent of [f]:
   the scheduler uses this to re-enter a transaction's root span for
   each event-callback segment, so substrate children opened inside the
   segment parent to the right transaction. *)
let with_handle (h : handle) f =
  match h with
  | None -> f ()
  | Some { h_span; _ } ->
      let saved = !current in
      current := Some h_span;
      Fun.protect ~finally:(fun () -> current := saved) f

let annotate key value =
  match !current with
  | None -> ()
  | Some s -> if enabled () then s.attrs <- s.attrs @ [ (key, value) ]

let annotate_handle (h : handle) key value =
  match h with
  | None -> ()
  | Some { h_span; _ } -> h_span.attrs <- h_span.attrs @ [ (key, value) ]

let finish_all c =
  (* Close innermost first so each leftover nests inside its parent:
     ids are monotonic, so descending id order is most-recently-opened
     first. *)
  let leftovers =
    List.sort
      (fun a b -> compare b.id a.id)
      (Hashtbl.fold (fun _ s acc -> s :: acc) c.open_spans [])
  in
  List.iter
    (fun s ->
      Bess_util.Stats.incr c.stats "span.unclosed";
      close_in c s ~attrs:[ ("unclosed", "true") ])
    leftovers;
  match !the_collector with
  | Some c' when c' == c -> current := None
  | _ -> ()

(* ---- Inspection ----------------------------------------------------------- *)

let to_list c =
  let cap = Array.length c.ring in
  let first = (c.head - c.length + cap) mod cap in
  List.init c.length (fun i ->
      match c.ring.((first + i) mod cap) with Some s -> s | None -> assert false)

let dropped c = c.dropped
let stats c = c.stats
let find_span c id = Hashtbl.find_opt c.by_id id
let duration s = if s.end_ns >= 0 then s.end_ns - s.start_ns else !clock - s.start_ns

let roots c =
  List.filter
    (fun s ->
      match s.parent with None -> true | Some pid -> not (Hashtbl.mem c.by_id pid))
    (to_list c)

let slowest ?(kind = "session.txn") c =
  let best pool =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when duration b >= duration s -> acc
        | _ -> Some s)
      None pool
  in
  match best (List.filter (fun s -> s.kind = kind) (to_list c)) with
  | Some s -> Some s
  | None -> best (roots c)

let children_index c =
  let idx = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match s.parent with
      | Some pid when Hashtbl.mem c.by_id pid -> Hashtbl.add idx pid s
      | _ -> ())
    (to_list c);
  idx

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%s" k v) attrs

let pp_tree c ppf root =
  let idx = children_index c in
  let rec go depth s =
    Fmt.pf ppf "%s%-14s %8dns  [%d..%d]%a@," (String.make (2 * depth) ' ') s.kind
      (duration s) s.start_ns s.end_ns pp_attrs s.attrs;
    let kids = List.sort (fun a b -> compare a.start_ns b.start_ns) (Hashtbl.find_all idx s.id) in
    List.iter (go (depth + 1)) kids
  in
  Fmt.pf ppf "@[<v>";
  go 0 root;
  Fmt.pf ppf "@]"

(* ---- Chrome trace_event export -------------------------------------------- *)

(* Complete ("X") events with microsecond stamps: 1 simulated ns renders
   as 0.001us exactly under %.3f, so nesting survives the unit change.
   The track (tid) is the span's root ancestor: each transaction gets
   its own timeline row in chrome://tracing / Perfetto. *)
let root_of c s =
  let rec up s =
    match s.parent with
    | None -> s.id
    | Some pid -> (
        match Hashtbl.find_opt c.by_id pid with None -> s.id | Some p -> up p)
  in
  up s

let to_chrome_json c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"cat\":\"bess\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
           (Registry.json_string s.kind)
           (float_of_int s.start_ns /. 1000.0)
           (float_of_int (duration s) /. 1000.0)
           (root_of c s));
      Buffer.add_string buf (Printf.sprintf "\"id\":\"%d\"" s.id);
      (match s.parent with
      | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":\"%d\"" p)
      | None -> ());
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf ",%s:%s" (Registry.json_string k) (Registry.json_string v)))
        s.attrs;
      Buffer.add_string buf "}}")
    (to_list c);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf
