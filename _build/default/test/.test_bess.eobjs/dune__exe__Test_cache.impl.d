test/test_cache.ml: Alcotest Bess_cache Bess_util Bytes Char List Option QCheck QCheck_alcotest
