(* The page cache: a fixed pool of page-sized slots (Figure 3: "the cache
   is viewed as a contiguous sequence of equal length frames, and the size
   of each frame is equal to the page size").

   Replacement policy is pluggable: the cache asks a victim chooser for a
   slot index when full; the chooser must return an unpinned slot. The
   classic clock ({!Clock}), the BeSS frame-state clock ({!State_clock})
   and the two-level clock ({!Two_level}) all drive this interface.

   A per-slot [refcount] supports the shared-memory mode, where it counts
   the processes that currently have the slot mapped accessible/protected
   (section 4.2: "BeSS associates a counter with each cache slot"). *)

module Span = Bess_obs.Span

type slot = {
  index : int;
  bytes : Bytes.t;
  mutable page : Page_id.t option;
  mutable dirty : bool;
  mutable pins : int;
  mutable refcount : int; (* shared-memory mode: processes mapping this slot *)
}

type t = {
  slots : slot array;
  page_size : int;
  map : int Page_id.Tbl.t; (* page -> slot index *)
  mutable writeback : Page_id.t -> Bytes.t -> unit;
  mutable choose_victim : unit -> int option;
  mutable n_dirty : int; (* slots with [dirty] set, kept incrementally *)
  (* Observer of every counted lookup (the memory X-ray feeds off this);
     one match on [None] when absent, so the hot path stays free. *)
  mutable access_hook : (Page_id.t -> hit:bool -> unit) option;
  stats : Bess_util.Stats.t;
}

let create ~nslots ~page_size =
  if nslots <= 0 then invalid_arg "Cache.create: nslots must be positive";
  let slots =
    Array.init nslots (fun index ->
        { index; bytes = Bytes.create page_size; page = None; dirty = false; pins = 0;
          refcount = 0 })
  in
  let stats = Bess_util.Stats.create () in
  Bess_obs.Registry.register_stats "cache" stats;
  let t =
    {
      slots;
      page_size;
      map = Page_id.Tbl.create (2 * nslots);
      writeback = (fun _ _ -> ());
      choose_victim = (fun () -> None);
      n_dirty = 0;
      access_hook = None;
      stats;
    }
  in
  (* Default policy: first unpinned, unmapped-elsewhere slot (FIFO-ish);
     real policies are installed with [set_victim_chooser]. *)
  t.choose_victim <-
    (fun () ->
      let found = ref None in
      (try
         Array.iter
           (fun s -> if s.pins = 0 && s.refcount = 0 then begin found := Some s.index; raise Exit end)
           t.slots
       with Exit -> ());
      !found);
  Bess_obs.Registry.register_gauge "cache" "cache.resident_pages" (fun () ->
      Page_id.Tbl.length t.map);
  Bess_obs.Registry.register_gauge "cache" "cache.dirty_pages" (fun () -> t.n_dirty);
  t

let nslots t = Array.length t.slots
let page_size t = t.page_size
let stats t = t.stats
let slot t i = t.slots.(i)
let set_writeback t f = t.writeback <- f
let set_victim_chooser t f = t.choose_victim <- f
let set_access_hook t h = t.access_hook <- h

(* Clear a slot's dirty bit, maintaining the incremental gauge count. *)
let clear_dirty t s =
  if s.dirty then begin
    s.dirty <- false;
    t.n_dirty <- t.n_dirty - 1
  end

let lookup t page =
  match Page_id.Tbl.find_opt t.map page with
  | Some i ->
      Bess_util.Stats.incr t.stats "cache.hits";
      (match t.access_hook with None -> () | Some f -> f page ~hit:true);
      Some t.slots.(i)
  | None ->
      Bess_util.Stats.incr t.stats "cache.misses";
      (match t.access_hook with None -> () | Some f -> f page ~hit:false);
      None

(* Peek without touching hit/miss counters (for assertions and tools). *)
let find_slot t page = Option.map (fun i -> t.slots.(i)) (Page_id.Tbl.find_opt t.map page)

let n_resident t = Page_id.Tbl.length t.map

exception Cache_full

(* Evict the slot chosen by the policy, writing it back if dirty.
   Returns the freed slot. *)
let evict_one t =
  match t.choose_victim () with
  | None -> raise Cache_full
  | Some i ->
      Span.with_span ~kind:"cache.evict" (fun () ->
          let s = t.slots.(i) in
          if s.pins > 0 then invalid_arg "Cache: policy chose a pinned slot";
          (match s.page with
          | Some page ->
              (* Clean/dirty split: a dirty eviction is a page written to
                 storage only to make room — the write-amplification
                 signal — while a clean one costs nothing downstream.
                 [cache.evictions] stays as the total. *)
              if s.dirty then begin
                t.writeback page s.bytes;
                Bess_util.Stats.incr t.stats "cache.dirty_writebacks";
                Bess_util.Stats.incr t.stats "cache.evict_dirty"
              end
              else Bess_util.Stats.incr t.stats "cache.evict_clean";
              Page_id.Tbl.remove t.map page;
              Bess_util.Stats.incr t.stats "cache.evictions"
          | None -> ());
          s.page <- None;
          clear_dirty t s;
          s.refcount <- 0;
          s)

(* Find a free slot, evicting if necessary. *)
let free_slot t =
  let found = ref None in
  (try
     Array.iter
       (fun s -> if s.page = None && s.pins = 0 then begin found := Some s; raise Exit end)
       t.slots
   with Exit -> ());
  match !found with Some s -> s | None -> evict_one t

(* [load t page ~fill] returns the slot holding [page], reading it with
   [fill] on a miss. The returned slot is pinned; callers unpin. *)
let load t page ~fill =
  match lookup t page with
  | Some s ->
      s.pins <- s.pins + 1;
      s
  | None ->
      Span.with_span ~kind:"cache.miss"
        ~attrs:
          (if Span.enabled () then
             [ ("page", Printf.sprintf "%d:%d" page.Page_id.area page.Page_id.page) ]
           else [])
        (fun () ->
          let s = free_slot t in
          fill s.bytes;
          Bess_util.Stats.incr t.stats "cache.loads";
          s.page <- Some page;
          s.pins <- s.pins + 1;
          Page_id.Tbl.replace t.map page s.index;
          s)

let unpin _t s =
  if s.pins <= 0 then invalid_arg "Cache.unpin: slot not pinned";
  s.pins <- s.pins - 1

let mark_dirty t s =
  if not s.dirty then begin
    s.dirty <- true;
    t.n_dirty <- t.n_dirty + 1
  end

(* Drop a clean or dirty page without writing it back (callback locking:
   the client discards its cached copy; aborts may also purge). *)
let discard t page =
  match Page_id.Tbl.find_opt t.map page with
  | None -> ()
  | Some i ->
      let s = t.slots.(i) in
      if s.pins > 0 then invalid_arg "Cache.discard: page is pinned";
      Page_id.Tbl.remove t.map page;
      s.page <- None;
      clear_dirty t s;
      s.refcount <- 0;
      Bess_util.Stats.incr t.stats "cache.discards"

(* Re-key a resident page to a new identity without touching its bytes
   (segment relocation: same frame, new disk address). *)
let rekey t ~old_page ~new_page =
  match Page_id.Tbl.find_opt t.map old_page with
  | None -> invalid_arg "Cache.rekey: page not resident"
  | Some i ->
      if Page_id.Tbl.mem t.map new_page then invalid_arg "Cache.rekey: target already resident";
      Page_id.Tbl.remove t.map old_page;
      Page_id.Tbl.replace t.map new_page i;
      t.slots.(i).page <- Some new_page

(* Write back every dirty page (checkpoint / shutdown). *)
let flush_all t =
  Array.iter
    (fun s ->
      match s.page with
      | Some page when s.dirty ->
          t.writeback page s.bytes;
          clear_dirty t s;
          Bess_util.Stats.incr t.stats "cache.flush_writebacks"
      | _ -> ())
    t.slots

let iter_resident t f =
  Array.iter (fun s -> match s.page with Some page -> f page s | None -> ()) t.slots

let hit_ratio t =
  let h = Bess_util.Stats.get t.stats "cache.hits" in
  let m = Bess_util.Stats.get t.stats "cache.misses" in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
