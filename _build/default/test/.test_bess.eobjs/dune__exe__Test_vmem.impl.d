test/test_vmem.ml: Alcotest Bess_util Bess_vmem Bytes Char List QCheck QCheck_alcotest String
